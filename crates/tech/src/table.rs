//! Table-based device evaluation (the paper's §3 DC model).
//!
//! A [`DeviceTable`] samples an analytical [`MosfetParams`] model onto a
//! uniform `(Vgs, Vds)` grid and answers current queries by bilinear
//! interpolation. Because the grid is fine ("Due to the fine discretization
//! of the tables we do not get convergence problems", §3) the classical
//! Newton iteration used by the waveform engine converges without the
//! successive-chord fallback of TETA.
//!
//! The table stores the current of a **1 µm wide** device; current scales
//! linearly with width, so one table per polarity serves the whole library.
//!
//! ```
//! use xtalk_tech::mosfet::MosfetParams;
//! use xtalk_tech::table::DeviceTable;
//!
//! let params = MosfetParams::nmos_05um();
//! let table = DeviceTable::from_params(&params, 3.3, 129);
//! let exact = params.drain_current(2.0, 1.0, 1.0e-6);
//! let approx = table.ids(2.0, 1.0, 1.0e-6);
//! assert!((approx - exact).abs() / exact < 0.01);
//! ```

use crate::mosfet::MosfetParams;

/// Reference width for which table entries are stored (1 µm).
pub const TABLE_REF_WIDTH: f64 = 1.0e-6;

/// A sampled `Ids(Vgs, Vds)` lookup table for one device polarity.
///
/// Queries outside the sampled voltage range are clamped to the table edge;
/// negative `Vds` uses the MOS symmetry relation, so callers can evaluate a
/// device in either orientation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceTable {
    /// Parameters the table was sampled from (kept for diagnostics).
    params: MosfetParams,
    /// Upper voltage bound of both axes (lower bound is 0).
    vmax: f64,
    /// Number of samples along each axis (>= 2).
    n: usize,
    /// Grid spacing `vmax / (n - 1)`.
    step: f64,
    /// Row-major samples: `data[ig * n + id]` with `ig` the Vgs index.
    data: Vec<f64>,
}

impl DeviceTable {
    /// Samples `params` on an `n x n` grid covering `[0, vmax]` on both axes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `vmax <= 0`.
    pub fn from_params(params: &MosfetParams, vmax: f64, n: usize) -> Self {
        assert!(n >= 2, "table needs at least 2 samples per axis");
        assert!(vmax > 0.0, "vmax must be positive");
        let step = vmax / (n - 1) as f64;
        let mut data = Vec::with_capacity(n * n);
        for ig in 0..n {
            let vgs = ig as f64 * step;
            for id in 0..n {
                let vds = id as f64 * step;
                data.push(params.drain_current(vgs, vds, TABLE_REF_WIDTH));
            }
        }
        DeviceTable {
            params: *params,
            vmax,
            n,
            step,
            data,
        }
    }

    /// The analytical parameters this table was sampled from.
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// Upper voltage bound of the sampled grid.
    pub fn vmax(&self) -> f64 {
        self.vmax
    }

    /// Number of samples per axis.
    pub fn samples(&self) -> usize {
        self.n
    }

    /// Interpolated drain current for a device of the given `width` (metres).
    ///
    /// Both voltages are clamped into `[0, vmax]` after the symmetry fix-up
    /// for negative `vds`; `vgs` below zero clamps to the leakage row.
    #[inline]
    pub fn ids(&self, vgs: f64, vds: f64, width: f64) -> f64 {
        if vds < 0.0 {
            return -self.ids(vgs - vds, -vds, width);
        }
        self.lookup(vgs, vds) * (width / TABLE_REF_WIDTH)
    }

    /// Interpolated current together with its partial derivative with
    /// respect to `vds` — the conductance the Newton solver needs.
    ///
    /// The derivative of the bilinear patch is exact (piecewise constant in
    /// `vds` within a cell), which is smooth enough given the fine grid.
    #[inline]
    pub fn ids_and_gds(&self, vgs: f64, vds: f64, width: f64) -> (f64, f64) {
        if vds < 0.0 {
            // Id(vgs, vds) = -Id(vgs - vds, -vds)
            // d/dvds = dId/dvgs' * (-1) ... the cross terms make the exact
            // chain rule unwieldy; a centred finite difference on the fixed-up
            // axis is accurate and branch-free.
            let h = self.step * 0.5;
            let lo = self.ids(vgs, vds - h, width);
            let hi = self.ids(vgs, vds + h, width);
            return (self.ids(vgs, vds, width), (hi - lo) / (2.0 * h));
        }
        let scale = width / TABLE_REF_WIDTH;
        let (i, g) = self.lookup_with_slope(vgs, vds);
        (i * scale, g * scale)
    }

    /// Interpolated current with both partial derivatives
    /// `(Ids, dIds/dVgs, dIds/dVds)` for a device of the given `width`.
    ///
    /// Negative `vds` is handled through the MOS symmetry relation with the
    /// chain rule applied to the derivatives, so network solvers can evaluate
    /// devices in either orientation.
    #[inline]
    pub fn derivs(&self, vgs: f64, vds: f64, width: f64) -> (f64, f64, f64) {
        if vds < 0.0 {
            // I(vgs, vds) = -I(vgs - vds, -vds)
            let (i, dg, dd) = self.derivs(vgs - vds, -vds, width);
            // dI/dvgs = -dg ; dI/dvds = -(dg * -1 + dd * -1) = dg + dd
            return (-i, -dg, dg + dd);
        }
        let scale = width / TABLE_REF_WIDTH;
        let (ig, fg) = self.clamp_index(vgs.max(0.0));
        let (id, fd) = self.clamp_index(vds);
        let n = self.n;
        let base = ig * n + id;
        let v00 = self.data[base];
        let v01 = self.data[base + 1];
        let v10 = self.data[base + n];
        let v11 = self.data[base + n + 1];
        let lo = v00 + (v01 - v00) * fd;
        let hi = v10 + (v11 - v10) * fd;
        let i = lo + (hi - lo) * fg;
        let d_vds = {
            let slo = (v01 - v00) / self.step;
            let shi = (v11 - v10) / self.step;
            slo + (shi - slo) * fg
        };
        let d_vgs = (hi - lo) / self.step;
        (i * scale, d_vgs * scale, d_vds * scale)
    }

    #[inline]
    fn clamp_index(&self, v: f64) -> (usize, f64) {
        let x = (v / self.step).clamp(0.0, (self.n - 1) as f64);
        let i = (x as usize).min(self.n - 2);
        (i, x - i as f64)
    }

    #[inline]
    fn lookup(&self, vgs: f64, vds: f64) -> f64 {
        let (ig, fg) = self.clamp_index(vgs.max(0.0));
        let (id, fd) = self.clamp_index(vds);
        let n = self.n;
        let base = ig * n + id;
        let v00 = self.data[base];
        let v01 = self.data[base + 1];
        let v10 = self.data[base + n];
        let v11 = self.data[base + n + 1];
        let lo = v00 + (v01 - v00) * fd;
        let hi = v10 + (v11 - v10) * fd;
        lo + (hi - lo) * fg
    }

    #[inline]
    fn lookup_with_slope(&self, vgs: f64, vds: f64) -> (f64, f64) {
        let (ig, fg) = self.clamp_index(vgs.max(0.0));
        let (id, fd) = self.clamp_index(vds);
        let n = self.n;
        let base = ig * n + id;
        let v00 = self.data[base];
        let v01 = self.data[base + 1];
        let v10 = self.data[base + n];
        let v11 = self.data[base + n + 1];
        let lo = v00 + (v01 - v00) * fd;
        let hi = v10 + (v11 - v10) * fd;
        let i = lo + (hi - lo) * fg;
        let slope_lo = (v01 - v00) / self.step;
        let slope_hi = (v11 - v10) / self.step;
        (i, slope_lo + (slope_hi - slope_lo) * fg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{DeviceType, MosfetParams};
    use proptest::prelude::*;

    const UM: f64 = 1.0e-6;

    fn nmos_table() -> DeviceTable {
        DeviceTable::from_params(&MosfetParams::nmos_05um(), 3.3, 129)
    }

    #[test]
    fn matches_analytical_model_on_grid_points() {
        let p = MosfetParams::nmos_05um();
        let t = DeviceTable::from_params(&p, 3.3, 65);
        let step = 3.3 / 64.0;
        for ig in [0usize, 10, 32, 64] {
            for id in [0usize, 7, 33, 64] {
                let vgs = ig as f64 * step;
                let vds = id as f64 * step;
                let exact = p.drain_current(vgs, vds, UM);
                let tab = t.ids(vgs, vds, UM);
                assert!(
                    (exact - tab).abs() <= 1e-9 * (1.0 + exact.abs()),
                    "grid point mismatch at ({vgs},{vds})"
                );
            }
        }
    }

    #[test]
    fn interpolation_error_small() {
        let p = MosfetParams::nmos_05um();
        let t = nmos_table();
        for i in 0..200 {
            let vgs = 3.3 * (i as f64 * 0.4057).fract();
            let vds = 3.3 * (i as f64 * 0.7312).fract();
            let exact = p.drain_current(vgs, vds, UM);
            let tab = t.ids(vgs, vds, UM);
            // Relative accuracy in strong inversion; near/below threshold the
            // current is exponential in Vgs and linear interpolation has large
            // *relative* but negligible *absolute* error.
            let tol = 0.02 * exact.abs() + 5e-7;
            assert!(
                (exact - tab).abs() < tol,
                "({vgs:.3},{vds:.3}): {exact} vs {tab}"
            );
        }
    }

    #[test]
    fn clamps_out_of_range_queries() {
        let t = nmos_table();
        let at_edge = t.ids(3.3, 3.3, UM);
        assert_eq!(t.ids(5.0, 3.3, UM), at_edge);
        assert_eq!(t.ids(3.3, 5.0, UM), at_edge);
        // Negative Vgs clamps to the leakage row, tiny but non-negative.
        assert!(t.ids(-1.0, 3.3, UM) >= 0.0);
        assert!(t.ids(-1.0, 3.3, UM) < 1e-6);
    }

    #[test]
    fn negative_vds_symmetry() {
        let t = nmos_table();
        let fwd = t.ids(3.0, 1.0, UM);
        let rev = t.ids(2.0, -1.0, UM);
        assert!((fwd + rev).abs() < 1e-12 + 1e-6 * fwd.abs());
    }

    #[test]
    fn slope_matches_finite_difference() {
        let t = nmos_table();
        for &(vgs, vds) in &[(2.0, 0.7), (3.3, 1.9), (1.0, 0.2), (2.8, 3.0)] {
            let (_, g) = t.ids_and_gds(vgs, vds, UM);
            let h = 1e-4;
            let fd = (t.ids(vgs, vds + h, UM) - t.ids(vgs, vds - h, UM)) / (2.0 * h);
            assert!(
                (g - fd).abs() <= 0.05 * fd.abs() + 1e-9,
                "slope mismatch at ({vgs},{vds}): {g} vs {fd}"
            );
        }
    }

    #[test]
    fn derivs_match_finite_differences() {
        let t = nmos_table();
        let h = 1e-5;
        // Keep the symmetric-reflection point (vgs - vds) inside the grid,
        // otherwise clamping makes finite differences vanish at the edge.
        for &(vgs, vds) in &[(2.0, 0.71), (3.1, 1.93), (1.2, 0.21), (1.8, -1.3)] {
            let (i, dg, dd) = t.derivs(vgs, vds, UM);
            assert!((i - t.ids(vgs, vds, UM)).abs() < 1e-12);
            let fd_g = (t.ids(vgs + h, vds, UM) - t.ids(vgs - h, vds, UM)) / (2.0 * h);
            let fd_d = (t.ids(vgs, vds + h, UM) - t.ids(vgs, vds - h, UM)) / (2.0 * h);
            assert!(
                (dg - fd_g).abs() <= 0.02 * fd_g.abs() + 1e-8,
                "dvgs at ({vgs},{vds}): {dg} vs {fd_g}"
            );
            assert!(
                (dd - fd_d).abs() <= 0.02 * fd_d.abs() + 1e-8,
                "dvds at ({vgs},{vds}): {dd} vs {fd_d}"
            );
        }
    }

    #[test]
    fn pmos_table_builds() {
        let p = MosfetParams::pmos_05um();
        let t = DeviceTable::from_params(&p, 3.3, 65);
        assert_eq!(t.params().device, DeviceType::Pmos);
        assert!(t.ids(3.3, 3.3, UM) > 0.0);
        assert_eq!(t.vmax(), 3.3);
        assert_eq!(t.samples(), 65);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn rejects_degenerate_grid() {
        DeviceTable::from_params(&MosfetParams::nmos_05um(), 3.3, 1);
    }

    #[test]
    #[should_panic(expected = "vmax must be positive")]
    fn rejects_non_positive_vmax() {
        DeviceTable::from_params(&MosfetParams::nmos_05um(), 0.0, 65);
    }

    proptest! {
        #[test]
        fn table_current_nonnegative_for_forward_bias(
            vgs in 0.0f64..3.3,
            vds in 0.0f64..3.3,
            w in 0.5f64..20.0,
        ) {
            let t = nmos_table();
            prop_assert!(t.ids(vgs, vds, w * UM) >= 0.0);
        }

        #[test]
        fn table_monotone_in_vds(
            vgs in 0.0f64..3.3,
            vds in 0.0f64..3.2,
            dv in 1e-3f64..0.1,
        ) {
            let t = nmos_table();
            let lo = t.ids(vgs, vds, UM);
            let hi = t.ids(vgs, (vds + dv).min(3.3), UM);
            prop_assert!(hi + 1e-15 >= lo);
        }

        #[test]
        fn table_monotone_in_vgs(
            vgs in 0.0f64..3.2,
            dv in 1e-3f64..0.1,
            vds in 0.0f64..3.3,
        ) {
            let t = nmos_table();
            let lo = t.ids(vgs, vds, UM);
            let hi = t.ids((vgs + dv).min(3.3), vds, UM);
            prop_assert!(hi + 1e-15 >= lo);
        }

        #[test]
        fn width_scaling_linear(
            vgs in 0.1f64..3.3,
            vds in 0.1f64..3.3,
            w in 0.5f64..20.0,
        ) {
            let t = nmos_table();
            let one = t.ids(vgs, vds, UM);
            let scaled = t.ids(vgs, vds, w * UM);
            prop_assert!((scaled - w * one).abs() <= 1e-9 * (1.0 + scaled.abs()));
        }
    }
}
