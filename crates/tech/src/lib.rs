//! Process technology, device models and a transistor-level cell library.
//!
//! This crate is the foundation of the `xtalk` crosstalk-aware static timing
//! analyzer (a reproduction of Ringe, Lindenkreuz & Barke, *"Static Timing
//! Analysis Taking Crosstalk into Account"*, DATE 2000). It provides:
//!
//! - [`units`]: light-weight newtypes for the physical quantities that cross
//!   API boundaries (volts, seconds, farads, ohms, microns).
//! - [`mosfet`]: an analytical alpha-power-law MOSFET DC model with a
//!   sub-threshold region — the "golden" device equations.
//! - [`table`]: the paper's *table-based* device representation
//!   ([`DeviceTable`]), i.e. the analytical model sampled onto a fine
//!   `Ids(Vgs, Vds)` grid with bilinear interpolation, exactly in the spirit
//!   of the TETA engine the paper builds on (§3: "the DC behavior of the
//!   transistors is modeled by tables").
//! - [`process`]: a full process description ([`Process`]) bundling supply,
//!   thresholds, device tables and wire parasitics for a generic 0.5 µm
//!   two-metal technology matching the paper's experimental setup.
//! - [`cell`] and [`library`]: standard cells described as series/parallel
//!   transistor networks ([`cell::Network`]), decomposed into single
//!   complementary-CMOS stages so that the waveform engine can solve each
//!   stage at transistor level.
//!
//! # Example
//!
//! ```
//! use xtalk_tech::process::Process;
//! use xtalk_tech::mosfet::DeviceType;
//!
//! let process = Process::c05um();
//! // Saturation current of a 2 µm wide NMOS at full gate drive:
//! let ids = process.table(DeviceType::Nmos).ids(process.vdd, process.vdd, 2.0e-6);
//! assert!(ids > 1.0e-4, "a 2 um NMOS should source well over 100 uA");
//! let lib = xtalk_tech::library::Library::c05um(&process);
//! assert!(lib.cell("INVX1").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod library;
pub mod mosfet;
pub mod process;
pub mod table;
pub mod units;

pub use cell::{Cell, Network, Stage};
pub use library::Library;
pub use mosfet::{DeviceType, MosfetParams};
pub use process::Process;
pub use table::DeviceTable;
