//! Monotone piecewise-linear waveforms.
//!
//! A [`Waveform`] is the unit of information propagated along the timing
//! graph: a voltage-vs-time trace that is monotone (purely rising or purely
//! falling), exactly as the paper's coupling model requires ("It also keeps
//! all waveforms monotonously rising or falling", §2). Before the first
//! point the waveform holds its initial value; after the last point its
//! final value.

use std::fmt;

/// Errors constructing a [`Waveform`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WaveformError {
    /// Fewer than two points were supplied.
    TooFewPoints,
    /// Time stamps are not strictly increasing.
    NonIncreasingTime {
        /// Index of the offending point.
        index: usize,
    },
    /// Voltages are not monotone.
    NonMonotone {
        /// Index of the offending point.
        index: usize,
    },
    /// A coordinate is NaN or infinite.
    NonFinite,
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::TooFewPoints => write!(f, "waveform needs at least two points"),
            WaveformError::NonIncreasingTime { index } => {
                write!(f, "time stamps must strictly increase (point {index})")
            }
            WaveformError::NonMonotone { index } => {
                write!(f, "voltages must be monotone (point {index})")
            }
            WaveformError::NonFinite => write!(f, "coordinates must be finite"),
        }
    }
}

impl std::error::Error for WaveformError {}

/// A monotone piecewise-linear voltage waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    /// `(time, voltage)` breakpoints; time strictly increasing, voltage
    /// monotone.
    points: Vec<(f64, f64)>,
}

impl Waveform {
    /// Builds a waveform from breakpoints.
    ///
    /// # Errors
    ///
    /// See [`WaveformError`]. A flat waveform (all voltages equal) counts as
    /// rising for direction queries but is valid.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, WaveformError> {
        if points.len() < 2 {
            return Err(WaveformError::TooFewPoints);
        }
        if points.iter().any(|(t, v)| !t.is_finite() || !v.is_finite()) {
            return Err(WaveformError::NonFinite);
        }
        let rising = points.last().expect("nonempty").1 >= points[0].1;
        for i in 1..points.len() {
            if points[i].0 <= points[i - 1].0 {
                return Err(WaveformError::NonIncreasingTime { index: i });
            }
            let dv = points[i].1 - points[i - 1].1;
            if (rising && dv < -1e-12) || (!rising && dv > 1e-12) {
                return Err(WaveformError::NonMonotone { index: i });
            }
        }
        Ok(Waveform { points })
    }

    /// A linear ramp from `(t0, v_from)` to `(t0 + duration, v_to)`.
    ///
    /// # Errors
    ///
    /// [`WaveformError`] when `duration <= 0` or a value is non-finite.
    pub fn ramp(t0: f64, duration: f64, v_from: f64, v_to: f64) -> Result<Self, WaveformError> {
        Waveform::new(vec![(t0, v_from), (t0 + duration, v_to)])
    }

    /// A (numerically) instantaneous transition at `t` — a 1 fs ramp, the
    /// paper's "instantaneous voltage drop" aggressor (§2).
    ///
    /// # Errors
    ///
    /// [`WaveformError::NonFinite`] for non-finite arguments.
    pub fn step(t: f64, v_from: f64, v_to: f64) -> Result<Self, WaveformError> {
        Waveform::new(vec![(t, v_from), (t + 1e-15, v_to)])
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// `true` when the waveform rises (flat waveforms count as rising).
    pub fn is_rising(&self) -> bool {
        self.points.last().expect("invariant: >= 2 points").1 >= self.points[0].1
    }

    /// Time of the first breakpoint.
    pub fn start_time(&self) -> f64 {
        self.points[0].0
    }

    /// Time of the last breakpoint.
    pub fn end_time(&self) -> f64 {
        self.points.last().expect("invariant: >= 2 points").0
    }

    /// Voltage before the waveform starts.
    pub fn initial_value(&self) -> f64 {
        self.points[0].1
    }

    /// Voltage after the waveform ends.
    pub fn final_value(&self) -> f64 {
        self.points.last().expect("invariant: >= 2 points").1
    }

    /// Voltage at time `t` (clamped to the initial/final value outside the
    /// breakpoint range).
    pub fn value_at(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing t.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, v0) = pts[lo];
        let (t1, v1) = pts[hi];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Time at which the waveform crosses voltage `v` (unique thanks to
    /// monotonicity), or `None` if `v` lies outside the waveform's range.
    ///
    /// On a flat segment exactly at `v`, the earliest time is returned.
    pub fn crossing(&self, v: f64) -> Option<f64> {
        let (lo_v, hi_v) = if self.is_rising() {
            (self.initial_value(), self.final_value())
        } else {
            (self.final_value(), self.initial_value())
        };
        if v < lo_v - 1e-12 || v > hi_v + 1e-12 {
            return None;
        }
        let pts = &self.points;
        for i in 1..pts.len() {
            let (t0, v0) = pts[i - 1];
            let (t1, v1) = pts[i];
            let (seg_lo, seg_hi) = if v0 <= v1 { (v0, v1) } else { (v1, v0) };
            if v >= seg_lo - 1e-12 && v <= seg_hi + 1e-12 {
                if (v1 - v0).abs() < 1e-15 {
                    return Some(t0);
                }
                let t = t0 + (t1 - t0) * (v - v0) / (v1 - v0);
                return Some(t.clamp(t0, t1));
            }
        }
        // v equals an endpoint within tolerance.
        if (v - self.initial_value()).abs() <= 1e-12 {
            Some(self.start_time())
        } else {
            Some(self.end_time())
        }
    }

    /// The waveform shifted later by `dt` (negative shifts earlier).
    pub fn shifted(&self, dt: f64) -> Waveform {
        Waveform {
            points: self.points.iter().map(|&(t, v)| (t + dt, v)).collect(),
        }
    }

    /// Transition time between the two voltage thresholds `(lo, hi)`
    /// (order-insensitive), or `None` if either is not crossed.
    pub fn slew(&self, lo: f64, hi: f64) -> Option<f64> {
        let a = self.crossing(lo)?;
        let b = self.crossing(hi)?;
        Some((b - a).abs())
    }

    /// Removes breakpoints that deviate less than `tol_v` from the straight
    /// line between their retained neighbours (Douglas-Peucker style sweep),
    /// bounding the memory of long integrations.
    pub fn simplify(&self, tol_v: f64) -> Waveform {
        if self.points.len() <= 2 {
            return self.clone();
        }
        let mut kept: Vec<(f64, f64)> = vec![self.points[0]];
        let mut anchor = 0;
        let pts = &self.points;
        let mut i = 1;
        while i + 1 < pts.len() {
            // Check whether all points between anchor and i+1 fit the chord.
            let (t0, v0) = pts[anchor];
            let (t1, v1) = pts[i + 1];
            let mut ok = true;
            for p in &pts[anchor + 1..=i] {
                let f = (p.0 - t0) / (t1 - t0);
                let line = v0 + (v1 - v0) * f;
                if (p.1 - line).abs() > tol_v {
                    ok = false;
                    break;
                }
            }
            if !ok {
                kept.push(pts[i]);
                anchor = i;
            }
            i += 1;
        }
        kept.push(*pts.last().expect("invariant: >= 2 points"));
        Waveform { points: kept }
    }

    /// Stretches the waveform in time around its crossing of `pivot_v` by
    /// `factor` — used to degrade slew through RC wires (PERI rule).
    ///
    /// Returns `self` unchanged when the pivot is not crossed.
    pub fn stretched_around(&self, pivot_v: f64, factor: f64) -> Waveform {
        let Some(tp) = self.crossing(pivot_v) else {
            return self.clone();
        };
        let factor = factor.max(1e-6);
        Waveform {
            points: self
                .points
                .iter()
                .map(|&(t, v)| (tp + (t - tp) * factor, v))
                .collect(),
        }
    }
}

impl fmt::Display for Waveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} wave, {} pts, {:.4}ns..{:.4}ns, {:.3}V..{:.3}V",
            if self.is_rising() {
                "rising"
            } else {
                "falling"
            },
            self.points.len(),
            self.start_time() * 1e9,
            self.end_time() * 1e9,
            self.initial_value(),
            self.final_value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ramp_basic_queries() {
        let w = Waveform::ramp(1e-9, 2e-9, 0.0, 3.3).expect("ramp");
        assert!(w.is_rising());
        assert_eq!(w.start_time(), 1e-9);
        assert!((w.end_time() - 3e-9).abs() < 1e-18);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(5e-9), 3.3);
        assert!((w.value_at(2e-9) - 1.65).abs() < 1e-12);
        let c = w.crossing(1.65).expect("crossing exists");
        assert!((c - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn falling_ramp() {
        let w = Waveform::ramp(0.0, 1e-9, 3.3, 0.0).expect("ramp");
        assert!(!w.is_rising());
        let c = w.crossing(0.33).expect("crossing");
        assert!((c - 0.9e-9).abs() < 1e-13, "{c}");
        assert_eq!(w.crossing(4.0), None);
        assert_eq!(w.crossing(-1.0), None);
    }

    #[test]
    fn step_is_nearly_instant() {
        let w = Waveform::step(1e-9, 3.3, 0.0).expect("step");
        assert!(w.end_time() - w.start_time() < 1e-14);
        assert!(!w.is_rising());
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert_eq!(
            Waveform::new(vec![(0.0, 0.0)]).unwrap_err(),
            WaveformError::TooFewPoints
        );
        assert_eq!(
            Waveform::new(vec![(0.0, 0.0), (0.0, 1.0)]).unwrap_err(),
            WaveformError::NonIncreasingTime { index: 1 }
        );
        assert_eq!(
            Waveform::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]).unwrap_err(),
            WaveformError::NonMonotone { index: 2 }
        );
        assert_eq!(
            Waveform::new(vec![(0.0, f64::NAN), (1.0, 1.0)]).unwrap_err(),
            WaveformError::NonFinite
        );
        assert!(Waveform::ramp(0.0, 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn shift_moves_times_only() {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let s = w.shifted(0.5e-9);
        assert_eq!(s.start_time(), 0.5e-9);
        assert_eq!(s.initial_value(), 0.0);
        assert_eq!(s.final_value(), 3.3);
    }

    #[test]
    fn slew_measures_threshold_distance() {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let s = w.slew(0.33, 2.97).expect("slew");
        assert!((s - 0.8e-9).abs() < 1e-13);
        // Order-insensitive.
        assert_eq!(w.slew(2.97, 0.33), w.slew(0.33, 2.97));
    }

    #[test]
    fn simplify_drops_collinear_points() {
        let pts: Vec<(f64, f64)> = (0..=100)
            .map(|i| (i as f64 * 1e-11, i as f64 * 0.033))
            .collect();
        let w = Waveform::new(pts).expect("valid");
        let s = w.simplify(1e-4);
        assert!(s.points().len() <= 3, "got {}", s.points().len());
        for i in 0..=100 {
            let t = i as f64 * 1e-11;
            assert!((s.value_at(t) - w.value_at(t)).abs() < 1e-3);
        }
    }

    #[test]
    fn simplify_keeps_curvature() {
        let pts: Vec<(f64, f64)> = (0..=100)
            .map(|i| {
                let t = i as f64 / 100.0;
                (t * 1e-9, 3.3 * t * t)
            })
            .collect();
        let w = Waveform::new(pts).expect("valid");
        let s = w.simplify(0.01);
        assert!(s.points().len() > 3);
        for i in 0..=100 {
            let t = i as f64 / 100.0 * 1e-9;
            assert!((s.value_at(t) - w.value_at(t)).abs() < 0.05);
        }
    }

    #[test]
    fn stretch_preserves_pivot_crossing() {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let s = w.stretched_around(1.65, 2.0);
        let before = w.crossing(1.65).expect("pivot");
        let after = s.crossing(1.65).expect("pivot");
        assert!((before - after).abs() < 1e-14);
        let slew_w = w.slew(0.33, 2.97).expect("slew");
        let slew_s = s.slew(0.33, 2.97).expect("slew");
        assert!((slew_s / slew_w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_direction() {
        let w = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        assert!(w.to_string().contains("rising"));
    }

    proptest! {
        #[test]
        fn crossing_value_roundtrip(
            t0 in -5.0f64..5.0,
            dur in 1e-3f64..10.0,
            v in 0.01f64..0.99,
        ) {
            let w = Waveform::ramp(t0 * 1e-9, dur * 1e-9, 0.0, 3.3).expect("ramp");
            let target = v * 3.3;
            let t = w.crossing(target).expect("in range");
            prop_assert!((w.value_at(t) - target).abs() < 1e-9);
        }

        #[test]
        fn value_at_monotone(
            dur in 1e-3f64..10.0,
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
        ) {
            let w = Waveform::ramp(0.0, dur * 1e-9, 0.0, 3.3).expect("ramp");
            let (a, b) = (a.min(b), a.max(b));
            prop_assert!(w.value_at(a * dur * 1e-9) <= w.value_at(b * dur * 1e-9) + 1e-12);
        }

        #[test]
        fn simplify_never_exceeds_tolerance(
            n in 3usize..40,
            seed in 0u64..1000,
        ) {
            // Build a random monotone waveform.
            let mut t = 0.0;
            let mut v = 0.0;
            let mut pts = vec![(t, v)];
            let mut s = seed;
            for _ in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                t += 1e-12 + (s >> 33) as f64 * 1e-22;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v += (s >> 33) as f64 * 1e-11;
                pts.push((t, v));
            }
            let w = Waveform::new(pts).expect("monotone by construction");
            let tol = 0.01;
            let simp = w.simplify(tol);
            for &(t, v) in w.points() {
                prop_assert!((simp.value_at(t) - v).abs() <= tol + 1e-9);
            }
        }
    }
}
