//! Standard-cell timing characterization.
//!
//! Sweeps every sensitizable cell arc over an input-slew × output-load grid
//! with the transistor-level stage solver, producing the NLDM-style lookup
//! tables a downstream gate-level flow would consume (see
//! [`crate::liberty`] for the Liberty writer). Multi-stage cells are
//! characterized by propagating the transition through their internal
//! stage chain, with internal nodes loaded exactly as in the timing
//! engine's expansion.

use xtalk_tech::cell::{Cell, StageSignal};
use xtalk_tech::Process;

use crate::pwl::Waveform;
use crate::stage::{Coupling, CouplingMode, Load, StageError, StageSolver};

/// Splits a total output capacitance into a grounded part and, when a
/// ratio is given, an active coupling of `ratio` times the total.
fn coupled_load(total: f64, ratio: Option<f64>) -> Load {
    match ratio {
        None => Load::grounded(total),
        Some(r) => Load {
            cground: total * (1.0 - r),
            couplings: vec![Coupling::new(total * r, CouplingMode::Active)],
        },
    }
}

/// Characterized tables of one timing arc.
///
/// The quiet (grounded-aggressor) tables are always present; the coupled
/// tables add a third, coupling-state dimension — the fraction of the
/// output load that is an *active* (opposing) coupling capacitance — and
/// are empty when characterization was run without ratios.
#[derive(Debug, Clone)]
pub struct ArcTable {
    /// Input pin index.
    pub pin: usize,
    /// `true` for the output-rising transition.
    pub output_rising: bool,
    /// Input transition times (full-swing ramp durations), seconds.
    pub slews: Vec<f64>,
    /// Output load capacitances, farads.
    pub loads: Vec<f64>,
    /// Active-coupling ratios (`c_active / ctot`) of the coupled tables;
    /// empty when only the quiet slice was characterized.
    pub ratios: Vec<f64>,
    /// `delay[i][j]`: Vdd/2-to-Vdd/2 delay at `slews[i]`, `loads[j]`.
    pub delay: Vec<Vec<f64>>,
    /// `out_slew[i][j]`: output 10–90% transition time.
    pub out_slew: Vec<Vec<f64>>,
    /// `coupled_delay[r][i][j]`: delay with an active coupling of
    /// `ratios[r]` times the total load fighting the transition.
    pub coupled_delay: Vec<Vec<Vec<f64>>>,
    /// `coupled_out_slew[r][i][j]`: output slew under the same coupling.
    pub coupled_out_slew: Vec<Vec<Vec<f64>>>,
}

/// All characterized arcs of one cell.
#[derive(Debug, Clone)]
pub struct CellTables {
    /// Library cell name.
    pub cell: String,
    /// Arc tables (one per sensitizable pin/direction pair).
    pub arcs: Vec<ArcTable>,
}

/// Characterizes one combinational cell over the given grids.
///
/// Sequential cells and non-sensitizable arcs are skipped (a DFF yields an
/// empty arc list).
///
/// # Errors
///
/// Propagates [`StageError`] from the underlying stage solutions.
pub fn characterize_cell(
    process: &Process,
    cell: &Cell,
    slews: &[f64],
    loads: &[f64],
) -> Result<CellTables, StageError> {
    characterize_cell_coupled(process, cell, slews, loads, &[])
}

/// Characterizes one combinational cell over slew × load × coupling-state
/// grids: the quiet tables plus, for each ratio in `ratios`, a table with
/// that fraction of the final-stage load replaced by an active (opposing)
/// coupling capacitance. With an empty `ratios` this is exactly
/// [`characterize_cell`], so the Liberty writer and the macromodel fast
/// path can share one characterization pass.
///
/// # Errors
///
/// Propagates [`StageError`] from the underlying stage solutions.
pub fn characterize_cell_coupled(
    process: &Process,
    cell: &Cell,
    slews: &[f64],
    loads: &[f64],
    ratios: &[f64],
) -> Result<CellTables, StageError> {
    let vdd = process.vdd;
    let th = process.delay_threshold();
    let (slo, shi) = process.slew_thresholds();
    let solver = StageSolver::new(process);
    let mut arcs = Vec::new();

    if cell.is_sequential() {
        return Ok(CellTables {
            cell: cell.name.clone(),
            arcs,
        });
    }

    for pin in 0..cell.inputs.len() {
        let Some(sides) = cell.sensitizing_side_values(pin, vdd) else {
            continue;
        };
        let Some(inverting) = cell.arc_inverting(pin, &sides, vdd) else {
            continue;
        };
        for output_rising in [false, true] {
            // Input direction implied by the arc polarity.
            let input_rising = if inverting {
                !output_rising
            } else {
                output_rising
            };
            let mut delay = vec![vec![0.0; loads.len()]; slews.len()];
            let mut out_slew = vec![vec![0.0; loads.len()]; slews.len()];
            let mut coupled_delay = vec![vec![vec![0.0; loads.len()]; slews.len()]; ratios.len()];
            let mut coupled_out_slew =
                vec![vec![vec![0.0; loads.len()]; slews.len()]; ratios.len()];
            for (i, &slew) in slews.iter().enumerate() {
                for (j, &cload) in loads.iter().enumerate() {
                    let (v0, v1) = if input_rising { (0.0, vdd) } else { (vdd, 0.0) };
                    let input = Waveform::ramp(0.0, slew.max(1e-12), v0, v1)
                        .expect("characterization ramps are valid");
                    for (slice, ratio) in std::iter::once(None)
                        .chain(ratios.iter().copied().map(Some))
                        .enumerate()
                    {
                        let out =
                            propagate(&solver, process, cell, pin, &sides, &input, cload, ratio)?;
                        let d = out
                            .crossing(th)
                            .and_then(|tc| input.crossing(th).map(|ti| tc - ti))
                            .unwrap_or(f64::NAN);
                        let s = out.slew(slo, shi).unwrap_or(f64::NAN);
                        match slice.checked_sub(1) {
                            None => {
                                delay[i][j] = d;
                                out_slew[i][j] = s;
                            }
                            Some(r) => {
                                coupled_delay[r][i][j] = d;
                                coupled_out_slew[r][i][j] = s;
                            }
                        }
                    }
                }
            }
            arcs.push(ArcTable {
                pin,
                output_rising,
                slews: slews.to_vec(),
                loads: loads.to_vec(),
                ratios: ratios.to_vec(),
                delay,
                out_slew,
                coupled_delay,
                coupled_out_slew,
            });
        }
    }
    Ok(CellTables {
        cell: cell.name.clone(),
        arcs,
    })
}

/// Propagates `input` on `pin` through the cell's stage chain to the output
/// pin, with the final stage driving `cload` — split, when `ratio` is
/// given, into a grounded part and an active coupling of `ratio` times the
/// total (the same exact load folding the macromodel fast path uses).
#[allow(clippy::too_many_arguments)]
fn propagate(
    solver: &StageSolver<'_>,
    process: &Process,
    cell: &Cell,
    pin: usize,
    side_voltages: &[f64],
    input: &Waveform,
    cload: f64,
    ratio: Option<f64>,
) -> Result<Waveform, StageError> {
    let vdd = process.vdd;
    // DC logic values of the cell pins with the switching pin at its
    // *initial* level; internal nodes follow by stage evaluation.
    let pin_value = |p: usize, switching_high: bool| -> Option<bool> {
        if p == pin {
            Some(switching_high)
        } else {
            Some(side_voltages.get(p).copied().unwrap_or(0.0) > 0.5 * vdd)
        }
    };
    let eval_internals = |switching_high: bool| -> Vec<Option<bool>> {
        let mut vals = vec![None; cell.internal_nodes];
        for stage in &cell.stages {
            let v = stage.eval(|slot| match stage.inputs[slot] {
                StageSignal::Pin(p) => pin_value(p, switching_high),
                StageSignal::Internal(k) => vals[k],
                StageSignal::Launch => None,
            });
            if let StageSignal::Internal(k) = stage.output {
                vals[k] = v;
            }
        }
        vals
    };
    let input_starts_high = !input.is_rising();
    let initial = eval_internals(input_starts_high);
    let finals = eval_internals(!input_starts_high);

    // Internal nodes loaded by the gate caps of the stages they feed.
    let mut internal_load = vec![0.0f64; cell.internal_nodes];
    for stage in &cell.stages {
        for (slot, sig) in stage.inputs.iter().enumerate() {
            if let StageSignal::Internal(k) = sig {
                internal_load[*k] += stage.input_cap(slot, process);
            }
        }
    }

    // Waveform per internal node (None = static), propagated stage by
    // stage; on reconvergence the latest-arriving changed input wins
    // (worst case).
    let mut internal_wave: Vec<Option<Waveform>> = vec![None; cell.internal_nodes];
    let mut output_wave: Option<Waveform> = None;
    for stage in &cell.stages {
        // Collect changed inputs of this stage.
        let mut candidates: Vec<(usize, Waveform)> = Vec::new();
        let mut side = vec![0.0f64; stage.inputs.len()];
        for (slot, sig) in stage.inputs.iter().enumerate() {
            match sig {
                StageSignal::Pin(p) => {
                    if *p == pin {
                        candidates.push((slot, input.clone()));
                    } else {
                        side[slot] = side_voltages.get(*p).copied().unwrap_or(0.0);
                    }
                }
                StageSignal::Internal(k) => {
                    if let Some(w) = &internal_wave[*k] {
                        candidates.push((slot, w.clone()));
                    } else {
                        side[slot] = match initial[*k] {
                            Some(true) => vdd,
                            _ => 0.0,
                        };
                    }
                }
                StageSignal::Launch => {}
            }
        }
        if candidates.is_empty() {
            continue;
        }
        // A stage whose output is logically constant under the side
        // assignment (e.g. NAND(A, B=0) inside an XOR) must not be
        // integrated — its output never transitions.
        let eval_ctx = |vals: &[Option<bool>], switching_high: bool| {
            stage.eval(|slot| match stage.inputs[slot] {
                StageSignal::Pin(p) => pin_value(p, switching_high),
                StageSignal::Internal(k) => vals[k],
                StageSignal::Launch => None,
            })
        };
        let out_initial = eval_ctx(&initial, input_starts_high);
        let out_final = eval_ctx(&finals, !input_starts_high);
        if out_initial.is_some() && out_initial == out_final {
            continue;
        }
        // Other changed inputs sit at their *final* DC level while the
        // worst (latest) one switches.
        let mut worst: Option<Waveform> = None;
        for (slot, wave) in &candidates {
            let mut side_local = side.clone();
            for (other_slot, _) in &candidates {
                if other_slot == slot {
                    continue;
                }
                let final_high = match stage.inputs[*other_slot] {
                    StageSignal::Pin(p) => {
                        if p == pin {
                            input.is_rising()
                        } else {
                            side_voltages.get(p).copied().unwrap_or(0.0) > 0.5 * vdd
                        }
                    }
                    StageSignal::Internal(k) => finals[k] == Some(true),
                    StageSignal::Launch => false,
                };
                side_local[*other_slot] = if final_high { vdd } else { 0.0 };
            }
            let load = match stage.output {
                StageSignal::Pin(_) => {
                    coupled_load(stage.output_diffusion_cap(process) + cload, ratio)
                }
                StageSignal::Internal(k) => {
                    Load::grounded(stage.output_diffusion_cap(process) + internal_load[k])
                }
                StageSignal::Launch => coupled_load(cload, ratio),
            };
            let r = solver.solve(stage, *slot, wave, &side_local, load)?;
            let th = process.delay_threshold();
            let is_worse = match (&worst, r.wave.crossing(th)) {
                (None, _) => true,
                (Some(w), Some(c)) => w.crossing(th).map(|wc| c > wc).unwrap_or(true),
                (Some(_), None) => false,
            };
            if is_worse {
                worst = Some(r.wave);
            }
        }
        let wave = worst.expect("at least one candidate solved");
        match stage.output {
            StageSignal::Internal(k) => internal_wave[k] = Some(wave),
            StageSignal::Pin(_) => output_wave = Some(wave),
            StageSignal::Launch => {}
        }
    }
    output_wave.ok_or(StageError::DidNotConverge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{Library, Process};

    fn setup() -> (Process, Library) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        (p, l)
    }

    const SLEWS: [f64; 3] = [0.05e-9, 0.2e-9, 0.8e-9];
    const LOADS: [f64; 3] = [5e-15, 25e-15, 100e-15];

    #[test]
    fn inverter_tables_monotone() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let t = characterize_cell(&p, inv, &SLEWS, &LOADS).expect("characterize");
        assert_eq!(t.arcs.len(), 2, "rise + fall");
        for arc in &t.arcs {
            for row in &arc.delay {
                // Delay increases with load.
                for w in row.windows(2) {
                    assert!(w[1] > w[0], "delay must grow with load: {row:?}");
                }
            }
            for j in 0..LOADS.len() {
                // Delay grows (weakly) with input slew.
                for i in 1..SLEWS.len() {
                    assert!(
                        arc.delay[i][j] >= arc.delay[i - 1][j] * 0.8,
                        "slew dependence broken"
                    );
                }
            }
            // Output slew grows with load.
            for row in &arc.out_slew {
                assert!(row[2] > row[0]);
            }
        }
    }

    #[test]
    fn nand_has_arcs_per_pin() {
        let (p, l) = setup();
        let nand = l.cell("NAND2X1").expect("nand");
        let t = characterize_cell(&p, nand, &SLEWS, &LOADS).expect("characterize");
        assert_eq!(t.arcs.len(), 4, "2 pins x 2 directions");
        for arc in &t.arcs {
            assert!(arc
                .delay
                .iter()
                .flatten()
                .all(|d| d.is_finite() && *d > 0.0));
        }
    }

    #[test]
    fn composite_and_cell_characterizes_through_both_stages() {
        let (p, l) = setup();
        let and2 = l.cell("AND2X1").expect("and2");
        let inv = l.cell("INVX1").expect("inv");
        let t_and = characterize_cell(&p, and2, &SLEWS, &LOADS).expect("and2");
        let t_inv = characterize_cell(&p, inv, &SLEWS, &LOADS).expect("inv");
        // A two-stage AND2 must be slower than a single inverter.
        let d_and = t_and.arcs[0].delay[1][1];
        let d_inv = t_inv.arcs[0].delay[1][1];
        assert!(d_and > d_inv, "AND2 {d_and} vs INV {d_inv}");
    }

    #[test]
    fn xor_characterizes_with_reconvergence() {
        let (p, l) = setup();
        let xor = l.cell("XOR2X1").expect("xor");
        let t = characterize_cell(&p, xor, &SLEWS, &LOADS).expect("xor");
        assert!(!t.arcs.is_empty());
        for arc in &t.arcs {
            for d in arc.delay.iter().flatten() {
                assert!(d.is_finite() && *d > 0.0, "XOR delay {d}");
            }
        }
    }

    #[test]
    fn coupled_tables_add_delay_over_quiet() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let ratios = [0.1, 0.3];
        let t = characterize_cell_coupled(&p, inv, &SLEWS, &LOADS, &ratios).expect("characterize");
        for arc in &t.arcs {
            assert_eq!(arc.ratios, ratios);
            assert_eq!(arc.coupled_delay.len(), ratios.len());
            for (r, table) in arc.coupled_delay.iter().enumerate() {
                for (i, row) in table.iter().enumerate() {
                    for (j, &d) in row.iter().enumerate() {
                        assert!(
                            d > arc.delay[i][j],
                            "active coupling must slow the arc: ratio {} slew {} load {}",
                            ratios[r],
                            SLEWS[i],
                            LOADS[j]
                        );
                    }
                }
            }
            // More opposing coupling, more delay.
            assert!(arc.coupled_delay[1][1][1] > arc.coupled_delay[0][1][1]);
        }
    }

    #[test]
    fn dff_yields_no_combinational_arcs() {
        let (p, l) = setup();
        let dff = l.cell("DFFX1").expect("dff");
        let t = characterize_cell(&p, dff, &SLEWS, &LOADS).expect("dff");
        assert!(t.arcs.is_empty());
    }
}
