//! Safeguarded scalar Newton iteration.
//!
//! Classical Newton with a bisection fallback that keeps the iterate inside
//! a sign-changing bracket — robust on the piecewise-linear table models
//! (whose derivative is discontinuous at cell boundaries) yet quadratically
//! fast where Newton behaves. This is the iteration the paper adopts in §3.

/// Outcome of a [`solve_bracketed`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonResult {
    /// The root estimate.
    pub x: f64,
    /// Residual `f(x)` at the estimate.
    pub residual: f64,
    /// Iterations consumed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solves `f(x) = 0` for `x` in `[lo, hi]`.
///
/// `f` returns `(value, derivative)`. If `f(lo)` and `f(hi)` do not bracket
/// a sign change the solver still runs (useful when both residuals are tiny,
/// e.g. an all-off transistor stack) and returns the endpoint or iterate
/// with the smallest |residual|.
///
/// `x_tol` is the absolute tolerance on `x`; iteration also stops when the
/// residual magnitude drops below `f_tol`.
///
/// # Panics
///
/// Panics if `lo > hi` or a bound is not finite.
pub fn solve_bracketed(
    mut f: impl FnMut(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    x_tol: f64,
    f_tol: f64,
    max_iter: usize,
) -> NewtonResult {
    solve_bracketed_from(&mut f, lo, hi, None, x_tol, f_tol, max_iter)
}

/// Like [`solve_bracketed`] but starting the iteration at `x0` (when given
/// and inside the bracket) — used to warm-start from a previous timestep's
/// solution.
///
/// # Panics
///
/// Panics if `lo > hi` or a bound is not finite.
pub fn solve_bracketed_from(
    f: &mut impl FnMut(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    x0: Option<f64>,
    x_tol: f64,
    f_tol: f64,
    max_iter: usize,
) -> NewtonResult {
    assert!(lo <= hi, "invalid bracket [{lo}, {hi}]");
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");

    let (mut a, mut b) = (lo, hi);
    let (fa, _) = f(a);
    let (fb, _) = f(b);
    if fa.abs() <= f_tol {
        return NewtonResult {
            x: a,
            residual: fa,
            iterations: 0,
            converged: true,
        };
    }
    if fb.abs() <= f_tol {
        return NewtonResult {
            x: b,
            residual: fb,
            iterations: 0,
            converged: true,
        };
    }
    let bracketed = (fa > 0.0) != (fb > 0.0);
    let sign_a = fa > 0.0;
    // Without a sign change: fall back to damped Newton from the start
    // point, reporting the best point seen.
    let mut x = match x0 {
        Some(x0) if x0 > a && x0 < b => x0,
        _ => 0.5 * (a + b),
    };
    let mut best = if fa.abs() < fb.abs() {
        (a, fa)
    } else {
        (b, fb)
    };

    for it in 0..max_iter {
        let (fx, dfx) = f(x);
        if fx.abs() < best.1.abs() {
            best = (x, fx);
        }
        if fx.abs() <= f_tol {
            return NewtonResult {
                x,
                residual: fx,
                iterations: it + 1,
                converged: true,
            };
        }
        if bracketed {
            // Maintain the bracket.
            if (fx > 0.0) == sign_a {
                a = x;
            } else {
                b = x;
            }
        }
        // Newton step, guarded.
        let mut next = if dfx.abs() > 1e-300 {
            x - fx / dfx
        } else {
            f64::NAN
        };
        if !next.is_finite() || next <= a || next >= b {
            next = 0.5 * (a + b); // bisect
        }
        if (next - x).abs() <= x_tol {
            let (fnext, _) = f(next);
            let (rx, rres) = if fnext.abs() < fx.abs() {
                (next, fnext)
            } else {
                (x, fx)
            };
            return NewtonResult {
                x: rx,
                residual: rres,
                iterations: it + 1,
                converged: rres.abs() <= f_tol || (next - x).abs() <= x_tol,
            };
        }
        x = next;
        if bracketed && (b - a) <= x_tol {
            let (fx, _) = f(x);
            return NewtonResult {
                x,
                residual: fx,
                iterations: it + 1,
                converged: true,
            };
        }
    }
    NewtonResult {
        x: best.0,
        residual: best.1,
        iterations: max_iter,
        converged: best.1.abs() <= f_tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: f64) -> (f64, f64) {
        (x * x - 2.0, 2.0 * x)
    }

    #[test]
    fn finds_sqrt2() {
        let r = solve_bracketed(quadratic, 0.0, 2.0, 1e-12, 1e-12, 100);
        assert!(r.converged);
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-9, "{}", r.x);
    }

    #[test]
    fn converges_fast_on_smooth_functions() {
        let r = solve_bracketed(quadratic, 1.0, 2.0, 1e-14, 1e-14, 100);
        assert!(r.converged);
        assert!(r.iterations <= 8, "took {} iterations", r.iterations);
    }

    #[test]
    fn handles_flat_derivative_by_bisection() {
        // Derivative reported as zero: must still converge via bisection.
        let f = |x: f64| (x - 0.7, 0.0);
        let r = solve_bracketed(f, 0.0, 1.0, 1e-10, 1e-12, 200);
        assert!(r.converged);
        assert!((r.x - 0.7).abs() < 1e-8, "{}", r.x);
    }

    #[test]
    fn handles_kinked_function() {
        // Piecewise-linear with a kink (like a table model cell boundary).
        let f = |x: f64| {
            if x < 0.5 {
                (x - 0.6, 1.0)
            } else {
                (5.0 * (x - 0.52), 5.0)
            }
        };
        let r = solve_bracketed(f, 0.0, 1.0, 1e-12, 1e-12, 200);
        assert!(r.converged);
        assert!((r.x - 0.52).abs() < 1e-8, "{}", r.x);
    }

    #[test]
    fn endpoint_roots_detected_immediately() {
        let f = |x: f64| (x, 1.0);
        let r = solve_bracketed(f, 0.0, 1.0, 1e-12, 1e-12, 100);
        assert!(r.converged);
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn unbracketed_all_off_returns_small_residual_point() {
        // Models an all-off stack: residual tiny everywhere.
        let f = |_x: f64| (1e-18, 0.0);
        let r = solve_bracketed(f, 0.0, 1.0, 1e-9, 1e-12, 50);
        assert!(r.converged, "tiny residual counts as converged");
        assert!(r.residual.abs() <= 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_reversed_bracket() {
        solve_bracketed(quadratic, 2.0, 0.0, 1e-9, 1e-9, 10);
    }

    #[test]
    fn steep_exponential() {
        let f = |x: f64| ((x * 20.0).exp() - 100.0, 20.0 * (x * 20.0).exp());
        let r = solve_bracketed(f, 0.0, 1.0, 1e-12, 1e-9, 100);
        assert!(r.converged);
        assert!((r.x - 100.0f64.ln() / 20.0).abs() < 1e-8);
    }
}
