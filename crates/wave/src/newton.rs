//! Safeguarded scalar Newton iteration.
//!
//! Classical Newton with a bisection fallback that keeps the iterate inside
//! a sign-changing bracket — robust on the piecewise-linear table models
//! (whose derivative is discontinuous at cell boundaries) yet quadratically
//! fast where Newton behaves. This is the iteration the paper adopts in §3.
//!
//! [`solve_bracketed`] is the cold-start entry point;
//! [`solve_bracketed_from`] is the warm-start entry point taking an optional
//! seed `x0` — both share one implementation (the cold path delegates with
//! `x0 = None`), so bracket maintenance, damping and the iteration counter
//! behave identically.

/// Outcome of a [`solve_bracketed`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonResult {
    /// The root estimate.
    pub x: f64,
    /// Residual `f(x)` at the estimate.
    pub residual: f64,
    /// Newton/bisection steps consumed. Endpoint probes are not steps, so
    /// an endpoint root reports `iterations == 0`; a seeded solve that fell
    /// back from the fast path to the guarded path reports the steps of
    /// both.
    pub iterations: usize,
    /// Total `f` evaluations, endpoint probes included — the true work
    /// metric for cost accounting.
    pub evals: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Whether the *last* `f` evaluation the solver performed was at `x`.
    /// Callers whose closure captures side state from each evaluation
    /// (e.g. partial derivatives) can skip a refresh evaluation when set.
    pub fresh: bool,
}

/// Solves `f(x) = 0` for `x` in `[lo, hi]`.
///
/// `f` returns `(value, derivative)`. If `f(lo)` and `f(hi)` do not bracket
/// a sign change the solver still runs (useful when both residuals are tiny,
/// e.g. an all-off transistor stack) and returns the endpoint or iterate
/// with the smallest |residual|.
///
/// `x_tol` is the absolute tolerance on `x`; iteration also stops when the
/// residual magnitude drops below `f_tol`.
///
/// # Panics
///
/// Panics if `lo > hi` or a bound is not finite.
pub fn solve_bracketed(
    mut f: impl FnMut(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    x_tol: f64,
    f_tol: f64,
    max_iter: usize,
) -> NewtonResult {
    solve_bracketed_from(&mut f, lo, hi, None, x_tol, f_tol, max_iter)
}

/// Newton steps the seed-trusting fast path may take before handing over
/// to the guarded path. Warm seeds from an adjacent timestep converge in
/// one to three steps; anything needing more deserves the safeguards.
const FAST_MAX: usize = 8;

/// Like [`solve_bracketed`] but starting the iteration at `x0` (when given
/// and strictly inside the bracket) — THE warm-start entry point, used to
/// seed from a previous timestep's solution.
///
/// A strictly interior seed first gets a *seed-trusting fast path*: pure
/// Newton from `x0` with no endpoint probes, which on the smooth
/// near-converged solves of adjacent timesteps saves the two probe
/// evaluations entirely. The moment anything looks off — a flat or
/// non-finite derivative, a step leaving `(lo, hi)`, or no convergence
/// within a few steps — the solver falls back to the guarded endpoint-probed
/// bracket path below, reusing the evaluation it already paid for, so the
/// fallback costs nothing over a cold start.
///
/// A stale or poisoned seed is harmless by construction: `x0` outside
/// `(lo, hi)` (including NaN — every comparison with NaN is false) skips
/// the fast path and is ignored in favour of the bracket midpoint, and once
/// on the guarded path the same damped-Newton→bisection safeguards apply as
/// on the cold path, so a bad seed can cost iterations but never
/// correctness.
///
/// # Panics
///
/// Panics if `lo > hi` or a bound is not finite.
pub fn solve_bracketed_from(
    f: &mut impl FnMut(f64) -> (f64, f64),
    lo: f64,
    hi: f64,
    x0: Option<f64>,
    x_tol: f64,
    f_tol: f64,
    max_iter: usize,
) -> NewtonResult {
    assert!(lo <= hi, "invalid bracket [{lo}, {hi}]");
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");

    let mut evals = 0usize;
    let mut f = |x: f64| {
        evals += 1;
        f(x)
    };

    // Seed-trusting fast path. On bail-out, `seed` carries the best iterate
    // into the guarded path and `known` its evaluation (when still valid),
    // so no work is repeated.
    let mut seed = x0;
    let mut known: Option<(f64, f64, f64)> = None;
    let mut spent = 0usize;
    if let Some(start) = x0 {
        if start > lo && start < hi {
            let mut x = start;
            for it in 0..FAST_MAX {
                spent = it + 1;
                let (fx, dfx) = f(x);
                if fx.abs() <= f_tol {
                    return NewtonResult {
                        x,
                        residual: fx,
                        iterations: spent,
                        evals,
                        converged: true,
                        fresh: true,
                    };
                }
                let next = if dfx.abs() > 1e-300 {
                    x - fx / dfx
                } else {
                    f64::NAN
                };
                if !next.is_finite() || next <= lo || next >= hi {
                    known = Some((x, fx, dfx));
                    break;
                }
                if (next - x).abs() <= x_tol {
                    let (fnext, _) = f(next);
                    let (rx, rres, fresh) = if fnext.abs() < fx.abs() {
                        (next, fnext, true)
                    } else {
                        (x, fx, false)
                    };
                    return NewtonResult {
                        x: rx,
                        residual: rres,
                        iterations: spent,
                        evals,
                        converged: true,
                        fresh,
                    };
                }
                x = next;
            }
            seed = Some(x);
        }
    }

    // Guarded path: probe the endpoints, establish the bracket, then damped
    // Newton with bisection fallback.
    let (mut a, mut b) = (lo, hi);
    let (fa, _) = f(a);
    if fa.abs() <= f_tol {
        return NewtonResult {
            x: a,
            residual: fa,
            iterations: spent,
            evals,
            converged: true,
            fresh: true,
        };
    }
    let (fb, _) = f(b);
    if fb.abs() <= f_tol {
        return NewtonResult {
            x: b,
            residual: fb,
            iterations: spent,
            evals,
            converged: true,
            fresh: true,
        };
    }
    let bracketed = (fa > 0.0) != (fb > 0.0);
    let sign_a = fa > 0.0;
    // Without a sign change: fall back to damped Newton from the start
    // point, reporting the best point seen.
    let mut x = match seed {
        Some(s) if s > a && s < b => s,
        _ => 0.5 * (a + b),
    };
    let mut best = if fa.abs() < fb.abs() {
        (a, fa)
    } else {
        (b, fb)
    };
    // Evaluation carried over from the fast path, valid iff at this `x`.
    let mut carry = match known {
        Some((kx, kfx, kdfx)) if kx == x => Some((kfx, kdfx)),
        _ => None,
    };

    for it in 0..max_iter {
        let (fx, dfx) = match carry.take() {
            Some(v) => v,
            None => f(x),
        };
        if fx.abs() < best.1.abs() {
            best = (x, fx);
        }
        if fx.abs() <= f_tol {
            return NewtonResult {
                x,
                residual: fx,
                iterations: spent + it + 1,
                evals,
                converged: true,
                fresh: true,
            };
        }
        if bracketed {
            // Maintain the bracket.
            if (fx > 0.0) == sign_a {
                a = x;
            } else {
                b = x;
            }
        }
        // Newton step, guarded.
        let mut next = if dfx.abs() > 1e-300 {
            x - fx / dfx
        } else {
            f64::NAN
        };
        if !next.is_finite() || next <= a || next >= b {
            next = 0.5 * (a + b); // bisect
        }
        if (next - x).abs() <= x_tol {
            let (fnext, _) = f(next);
            let (rx, rres, fresh) = if fnext.abs() < fx.abs() {
                (next, fnext, true)
            } else {
                (x, fx, false)
            };
            return NewtonResult {
                x: rx,
                residual: rres,
                iterations: spent + it + 1,
                evals,
                converged: rres.abs() <= f_tol || (next - x).abs() <= x_tol,
                fresh,
            };
        }
        x = next;
        if bracketed && (b - a) <= x_tol {
            let (fx, _) = f(x);
            return NewtonResult {
                x,
                residual: fx,
                iterations: spent + it + 1,
                evals,
                converged: true,
                fresh: true,
            };
        }
    }
    NewtonResult {
        x: best.0,
        residual: best.1,
        iterations: spent + max_iter,
        evals,
        converged: best.1.abs() <= f_tol,
        fresh: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: f64) -> (f64, f64) {
        (x * x - 2.0, 2.0 * x)
    }

    #[test]
    fn finds_sqrt2() {
        let r = solve_bracketed(quadratic, 0.0, 2.0, 1e-12, 1e-12, 100);
        assert!(r.converged);
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-9, "{}", r.x);
        assert!(r.evals >= r.iterations + 2, "endpoint probes counted");
    }

    #[test]
    fn converges_fast_on_smooth_functions() {
        let r = solve_bracketed(quadratic, 1.0, 2.0, 1e-14, 1e-14, 100);
        assert!(r.converged);
        assert!(r.iterations <= 8, "took {} iterations", r.iterations);
    }

    #[test]
    fn handles_flat_derivative_by_bisection() {
        // Derivative reported as zero: must still converge via bisection.
        let f = |x: f64| (x - 0.7, 0.0);
        let r = solve_bracketed(f, 0.0, 1.0, 1e-10, 1e-12, 200);
        assert!(r.converged);
        assert!((r.x - 0.7).abs() < 1e-8, "{}", r.x);
    }

    #[test]
    fn handles_kinked_function() {
        // Piecewise-linear with a kink (like a table model cell boundary).
        let f = |x: f64| {
            if x < 0.5 {
                (x - 0.6, 1.0)
            } else {
                (5.0 * (x - 0.52), 5.0)
            }
        };
        let r = solve_bracketed(f, 0.0, 1.0, 1e-12, 1e-12, 200);
        assert!(r.converged);
        assert!((r.x - 0.52).abs() < 1e-8, "{}", r.x);
    }

    #[test]
    fn endpoint_roots_detected_immediately() {
        let f = |x: f64| (x, 1.0);
        let r = solve_bracketed(f, 0.0, 1.0, 1e-12, 1e-12, 100);
        assert!(r.converged);
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.evals, 1, "a root at `lo` needs only the first probe");
        assert!(r.fresh, "the probe at `lo` is the final evaluation");
    }

    #[test]
    fn unbracketed_all_off_returns_small_residual_point() {
        // Models an all-off stack: residual tiny everywhere.
        let f = |_x: f64| (1e-18, 0.0);
        let r = solve_bracketed(f, 0.0, 1.0, 1e-9, 1e-12, 50);
        assert!(r.converged, "tiny residual counts as converged");
        assert!(r.residual.abs() <= 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_reversed_bracket() {
        solve_bracketed(quadratic, 2.0, 0.0, 1e-9, 1e-9, 10);
    }

    #[test]
    fn steep_exponential() {
        let f = |x: f64| ((x * 20.0).exp() - 100.0, 20.0 * (x * 20.0).exp());
        let r = solve_bracketed(f, 0.0, 1.0, 1e-12, 1e-9, 100);
        assert!(r.converged);
        assert!((r.x - 100.0f64.ln() / 20.0).abs() < 1e-8);
    }

    #[test]
    fn good_seed_cuts_iterations() {
        let cold = solve_bracketed(quadratic, 0.0, 2.0, 1e-12, 1e-12, 100);
        let warm = solve_bracketed_from(
            &mut quadratic,
            0.0,
            2.0,
            Some(std::f64::consts::SQRT_2 + 1e-4),
            1e-12,
            1e-12,
            100,
        );
        assert!(warm.converged);
        assert!((warm.x - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn stale_seed_outside_bracket_falls_back_to_guarded_path() {
        // A poisoned warm-start seed beyond the bracket must be discarded
        // (midpoint start) and still converge through the damped-Newton →
        // bisection guardrail — identical to the cold-start result.
        let cold = solve_bracketed(quadratic, 0.0, 2.0, 1e-12, 1e-12, 100);
        for seed in [5.0, -3.0, f64::NAN, f64::INFINITY] {
            let r = solve_bracketed_from(&mut quadratic, 0.0, 2.0, Some(seed), 1e-12, 1e-12, 100);
            assert!(r.converged, "seed {seed} must still converge");
            assert_eq!(r.x.to_bits(), cold.x.to_bits(), "seed {seed}");
            assert_eq!(r.iterations, cold.iterations, "seed {seed}");
        }
    }
}
