//! DC evaluation of series/parallel transistor networks.
//!
//! Given the gate voltage of every device, [`NetworkEval`] computes the
//! current through a [`Network`] between its two terminals, solving the
//! internal nodes of series stacks exactly with the safeguarded Newton
//! iteration of [`crate::newton`]. The evaluation also returns the partial
//! derivatives of the terminal current with respect to both terminal
//! voltages (propagated through the internal-node solves by the implicit
//! function theorem), which gives the backward-Euler integrator quadratic
//! Newton convergence with no extra network evaluations.
//!
//! Internal node capacitances are neglected — the stack is solved as a DC
//! network at each timestep, the standard approximation of stage-based
//! transistor-level timing engines (TETA and the paper's §3 follow it too).

use xtalk_tech::cell::Network;
use xtalk_tech::mosfet::DeviceType;
use xtalk_tech::table::DeviceTable;
use xtalk_tech::Process;

use crate::newton::solve_bracketed_from;

/// Current through a network terminal together with its sensitivities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TerminalCurrent {
    /// Current flowing from terminal `a` (the output-adjacent side, element
    /// 0 of a series chain) towards terminal `b` (the rail side), amperes.
    pub i: f64,
    /// `d i / d v_a`.
    pub di_da: f64,
    /// `d i / d v_b`.
    pub di_db: f64,
}

impl TerminalCurrent {
    fn sum(self, other: TerminalCurrent) -> TerminalCurrent {
        TerminalCurrent {
            i: self.i + other.i,
            di_da: self.di_da + other.di_da,
            di_db: self.di_db + other.di_db,
        }
    }
}

/// Warm-start storage for the internal nodes of series stacks.
///
/// A given [`Network`] shape visits its series splits in a deterministic
/// order, so successive evaluations (adjacent timesteps) can reuse the
/// previous solution as the Newton starting point. Create one per
/// (stage, transition) solve and pass it to every evaluation.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    mids: Vec<f64>,
    cursor: usize,
}

impl WarmStart {
    /// Creates an empty warm-start store.
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// Forgets every stored solution while keeping the allocation, making a
    /// reused store indistinguishable from a fresh one. Called at the start
    /// of each stage solve when the store lives in a long-lived
    /// [`crate::stage::StageScratch`].
    pub fn reset(&mut self) {
        self.mids.clear();
        self.cursor = 0;
    }

    fn begin(&mut self) {
        self.cursor = 0;
    }

    fn slot(&mut self, default: f64) -> (usize, f64) {
        let idx = self.cursor;
        self.cursor += 1;
        if idx >= self.mids.len() {
            self.mids.push(default);
        }
        (idx, self.mids[idx])
    }
}

/// Evaluator of one polarity of transistor network against a device table.
#[derive(Debug, Clone, Copy)]
pub struct NetworkEval<'a> {
    table: &'a DeviceTable,
    polarity: DeviceType,
}

impl<'a> NetworkEval<'a> {
    /// Creates an evaluator for `polarity` devices of `process`.
    pub fn new(process: &'a Process, polarity: DeviceType) -> Self {
        NetworkEval {
            table: process.table(polarity),
            polarity,
        }
    }

    /// Current from the output-adjacent terminal (at `v_a`) to the rail
    /// terminal (at `v_b`), with sensitivities. `gates[slot]` gives the gate
    /// voltage of devices whose `input` is `slot`.
    ///
    /// Positive current flows `a -> b`; for a PMOS pull-up network charging
    /// its output the returned current is therefore negative.
    pub fn current(
        &self,
        net: &Network,
        v_a: f64,
        v_b: f64,
        gates: &[f64],
        warm: &mut WarmStart,
    ) -> TerminalCurrent {
        warm.begin();
        self.eval(net, v_a, v_b, gates, warm)
    }

    fn eval(
        &self,
        net: &Network,
        v_a: f64,
        v_b: f64,
        gates: &[f64],
        warm: &mut WarmStart,
    ) -> TerminalCurrent {
        match net {
            Network::Device { input, width, .. } => self.device(gates[*input], v_a, v_b, *width),
            Network::Parallel(children) => children
                .iter()
                .map(|c| self.eval(c, v_a, v_b, gates, warm))
                .fold(TerminalCurrent::default(), TerminalCurrent::sum),
            Network::Series(children) => self.series(children, v_a, v_b, gates, warm),
        }
    }

    fn device(&self, vg: f64, v_a: f64, v_b: f64, width: f64) -> TerminalCurrent {
        match self.polarity {
            DeviceType::Nmos => {
                // Source modelled at terminal b; the table's symmetry
                // extension takes over when current reverses.
                let (i, dg, dd) = self.table.derivs(vg - v_b, v_a - v_b, width);
                TerminalCurrent {
                    i,
                    di_da: dd,
                    di_db: -dg - dd,
                }
            }
            DeviceType::Pmos => {
                // Source modelled at terminal b (the VDD-adjacent side in a
                // pull-up); positive table current flows b -> a, hence the
                // negation.
                let (i, dg, dd) = self.table.derivs(v_b - vg, v_b - v_a, width);
                TerminalCurrent {
                    i: -i,
                    di_da: dd,
                    di_db: -(dg + dd),
                }
            }
        }
    }

    fn series(
        &self,
        children: &[Network],
        v_a: f64,
        v_b: f64,
        gates: &[f64],
        warm: &mut WarmStart,
    ) -> TerminalCurrent {
        match children {
            [] => TerminalCurrent::default(),
            [only] => self.eval(only, v_a, v_b, gates, warm),
            [head, tail @ ..] => {
                let lo = v_a.min(v_b) - 1e-9;
                let hi = v_a.max(v_b) + 1e-9;
                let (slot_idx, start) = warm.slot(0.5 * (v_a + v_b));
                let start = start.clamp(lo, hi);

                // Slot layout after this split's own slot: the head's
                // internal slots, then the tail's.
                let head_slots = slots(head);
                let tail_slots = series_slots(tail);
                let head_cursor = warm.cursor;
                let end_cursor = head_cursor + head_slots + tail_slots;

                let mut last_head = TerminalCurrent::default();
                let mut last_tail = TerminalCurrent::default();
                let solution;
                {
                    let mut f = |v_m: f64| {
                        warm.cursor = head_cursor;
                        let h = self.eval(head, v_a, v_m, gates, warm);
                        warm.cursor = head_cursor + head_slots;
                        let t = self.series(tail, v_m, v_b, gates, warm);
                        last_head = h;
                        last_tail = t;
                        (h.i - t.i, h.di_db - t.di_da)
                    };
                    let r = solve_bracketed_from(&mut f, lo, hi, Some(start), 1e-7, 1e-12, 80);
                    if !r.fresh {
                        // Refresh the partials stored in `last_head` /
                        // `last_tail` — only needed when the solver's final
                        // evaluation was not at the returned root.
                        let _ = f(r.x);
                    }
                    solution = r.x;
                }
                warm.mids[slot_idx] = solution;
                warm.cursor = end_cursor;

                let h = last_head;
                let t = last_tail;
                let denom = h.di_db - t.di_da;
                let (dm_da, dm_db) = if denom.abs() > 1e-18 {
                    (-h.di_da / denom, t.di_db / denom)
                } else {
                    (0.0, 0.0)
                };
                TerminalCurrent {
                    i: h.i,
                    di_da: h.di_da + h.di_db * dm_da,
                    di_db: h.di_db * dm_db,
                }
            }
        }
    }
}

/// Number of internal warm-start slots one network consumes.
fn slots(net: &Network) -> usize {
    match net {
        Network::Device { .. } => 0,
        Network::Parallel(v) => v.iter().map(slots).sum(),
        Network::Series(v) => series_slots(v),
    }
}

/// Number of internal warm-start slots a series expression consumes.
fn series_slots(children: &[Network]) -> usize {
    if children.len() <= 1 {
        children.iter().map(slots).sum()
    } else {
        // One split node + the head's internals + the tail's internals.
        1 + slots(&children[0]) + series_slots(&children[1..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::cell::Network;
    use xtalk_tech::mosfet::DeviceType;
    use xtalk_tech::Process;

    const UM: f64 = 1.0e-6;
    const L: f64 = 0.5e-6;

    fn process() -> Process {
        Process::c05um()
    }

    #[test]
    fn single_nmos_matches_table() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let net = Network::device(0, 2.0 * UM, L);
        let mut warm = WarmStart::new();
        let tc = ev.current(&net, 1.5, 0.0, &[3.3], &mut warm);
        let want = p.table(DeviceType::Nmos).ids(3.3, 1.5, 2.0 * UM);
        assert!((tc.i - want).abs() < 1e-12);
        assert!(tc.di_da > 0.0, "conductance positive");
    }

    #[test]
    fn single_pmos_charges_output() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Pmos);
        let net = Network::device(0, 4.0 * UM, L);
        let mut warm = WarmStart::new();
        // Output at 1.0 V, rail at VDD, gate low: pull-up conducting.
        let tc = ev.current(&net, 1.0, 3.3, &[0.0], &mut warm);
        assert!(tc.i < 0.0, "charging current flows rail->output: {}", tc.i);
        assert!(tc.i.abs() > 1e-4);
    }

    #[test]
    fn off_network_conducts_nothing() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let net = Network::device(0, 2.0 * UM, L);
        let mut warm = WarmStart::new();
        let tc = ev.current(&net, 3.3, 0.0, &[0.0], &mut warm);
        assert!(tc.i.abs() < 1e-6, "off device leaks only: {}", tc.i);
    }

    #[test]
    fn series_stack_halves_current_roughly() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let single = Network::device(0, 4.0 * UM, L);
        let stack = Network::Series(vec![
            Network::device(0, 4.0 * UM, L),
            Network::device(1, 4.0 * UM, L),
        ]);
        let mut warm = WarmStart::new();
        let i1 = ev.current(&single, 3.3, 0.0, &[3.3, 3.3], &mut warm).i;
        let mut warm2 = WarmStart::new();
        let i2 = ev.current(&stack, 3.3, 0.0, &[3.3, 3.3], &mut warm2).i;
        assert!(i2 < i1, "stacking must reduce drive");
        assert!(i2 > 0.35 * i1, "velocity saturation keeps the loss mild");
    }

    #[test]
    fn series_with_one_off_device_blocks() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let stack = Network::Series(vec![
            Network::device(0, 4.0 * UM, L),
            Network::device(1, 4.0 * UM, L),
        ]);
        let mut warm = WarmStart::new();
        let i = ev.current(&stack, 3.3, 0.0, &[3.3, 0.0], &mut warm).i;
        assert!(i.abs() < 1e-6, "blocked stack: {i}");
    }

    #[test]
    fn parallel_network_sums() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let single = Network::device(0, 2.0 * UM, L);
        let par = Network::Parallel(vec![
            Network::device(0, 2.0 * UM, L),
            Network::device(1, 2.0 * UM, L),
        ]);
        let mut warm = WarmStart::new();
        let i1 = ev.current(&single, 2.0, 0.0, &[3.3, 3.3], &mut warm).i;
        let i2 = ev.current(&par, 2.0, 0.0, &[3.3, 3.3], &mut warm).i;
        assert!((i2 - 2.0 * i1).abs() < 1e-9 + 1e-6 * i1.abs());
    }

    #[test]
    fn triple_stack_solves_two_internal_nodes() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let stack = Network::Series(vec![
            Network::device(0, 6.0 * UM, L),
            Network::device(1, 6.0 * UM, L),
            Network::device(2, 6.0 * UM, L),
        ]);
        let mut warm = WarmStart::new();
        let i = ev.current(&stack, 3.3, 0.0, &[3.3; 3], &mut warm).i;
        assert!(i > 1e-4, "on stack conducts: {i}");
        // Warm start should have registered two internal nodes.
        assert_eq!(warm.mids.len(), 2);
        // Re-evaluation from the warm start must agree.
        let i2 = ev.current(&stack, 3.3, 0.0, &[3.3; 3], &mut warm).i;
        assert!((i - i2).abs() <= 1e-9 + 1e-6 * i.abs());
    }

    #[test]
    fn aoi_structure_evaluates() {
        // Pull-down of AOI21: (A series B) parallel C.
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let net = Network::Parallel(vec![
            Network::Series(vec![
                Network::device(0, 4.0 * UM, L),
                Network::device(1, 4.0 * UM, L),
            ]),
            Network::device(2, 2.0 * UM, L),
        ]);
        let mut warm = WarmStart::new();
        // Only C on.
        let ic = ev.current(&net, 2.0, 0.0, &[0.0, 0.0, 3.3], &mut warm).i;
        // Only the AB branch on.
        let mut warm2 = WarmStart::new();
        let iab = ev.current(&net, 2.0, 0.0, &[3.3, 3.3, 0.0], &mut warm2).i;
        // Both on.
        let mut warm3 = WarmStart::new();
        let iboth = ev.current(&net, 2.0, 0.0, &[3.3, 3.3, 3.3], &mut warm3).i;
        assert!(ic > 1e-5 && iab > 1e-5);
        assert!((iboth - (ic + iab)).abs() < 0.02 * iboth);
    }

    #[test]
    fn sensitivities_match_finite_differences() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let stack = Network::Series(vec![
            Network::device(0, 4.0 * UM, L),
            Network::device(1, 4.0 * UM, L),
        ]);
        let g = [3.3, 3.3];
        let eval = |va: f64, vb: f64| {
            let mut w = WarmStart::new();
            ev.current(&stack, va, vb, &g, &mut w)
        };
        let (va, vb) = (1.7, 0.0);
        let tc = eval(va, vb);
        let h = 1e-4;
        let fd_a = (eval(va + h, vb).i - eval(va - h, vb).i) / (2.0 * h);
        let fd_b = (eval(va, vb + h).i - eval(va, vb - h).i) / (2.0 * h);
        assert!(
            (tc.di_da - fd_a).abs() <= 0.05 * fd_a.abs() + 1e-7,
            "da {} vs {}",
            tc.di_da,
            fd_a
        );
        // The table model is bilinear, so one-sided derivatives differ at
        // cell boundaries; the rail-side sensitivity only steers Newton and
        // a looser band is fine.
        assert!(
            (tc.di_db - fd_b).abs() <= 0.15 * fd_b.abs() + 1e-7,
            "db {} vs {}",
            tc.di_db,
            fd_b
        );
        assert!(tc.di_db.signum() == fd_b.signum());
    }

    #[test]
    fn reversed_terminals_negate_current() {
        let p = process();
        let ev = NetworkEval::new(&p, DeviceType::Nmos);
        let net = Network::device(0, 2.0 * UM, L);
        let mut warm = WarmStart::new();
        let fwd = ev.current(&net, 1.5, 0.0, &[3.3], &mut warm).i;
        let rev = ev.current(&net, 0.0, 1.5, &[3.3], &mut warm).i;
        assert!((fwd + rev).abs() < 1e-9 + 1e-6 * fwd.abs());
    }
}
