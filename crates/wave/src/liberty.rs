//! Liberty (`.lib`) writer for characterized cell timing.
//!
//! Emits a minimal-but-well-formed NLDM Liberty library from
//! [`crate::characterize`] results: per-cell area and pin capacitances,
//! boolean functions, and `cell_rise`/`cell_fall`/`rise_transition`/
//! `fall_transition` lookup tables — enough for a conventional gate-level
//! STA or synthesis tool to consume the `xtalk` cell library.

use std::fmt::Write as _;

use xtalk_tech::cell::Function;
use xtalk_tech::{Library, Process};

use crate::characterize::{ArcTable, CellTables};

/// Liberty boolean-function string of a cell.
fn function_string(function: Function, inputs: &[String]) -> String {
    let join = |op: &str| {
        inputs
            .iter()
            .map(|p| p.as_str())
            .collect::<Vec<_>>()
            .join(op)
    };
    match function {
        Function::Inv => format!("(!{})", inputs[0]),
        Function::Buf => inputs[0].clone(),
        Function::And => format!("({})", join("*")),
        Function::Nand => format!("(!({}))", join("*")),
        Function::Or => format!("({})", join("+")),
        Function::Nor => format!("(!({}))", join("+")),
        Function::Xor => format!("({}^{})", inputs[0], inputs[1]),
        Function::Xnor => format!("(!({}^{}))", inputs[0], inputs[1]),
        Function::Mux2 => format!(
            "(({d0}*!{s})+({d1}*{s}))",
            d0 = inputs[0],
            d1 = inputs[1],
            s = inputs[2]
        ),
        Function::Aoi21 => format!(
            "(!(({a}*{b})+{c}))",
            a = inputs[0],
            b = inputs[1],
            c = inputs[2]
        ),
        Function::Oai21 => format!(
            "(!(({a}+{b})*{c}))",
            a = inputs[0],
            b = inputs[1],
            c = inputs[2]
        ),
        Function::Dff => "IQ".to_string(),
    }
}

fn write_values(out: &mut String, indent: &str, table: &[Vec<f64>], scale: f64) {
    let rows: Vec<String> = table
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.iter().map(|v| format!("{:.5}", v * scale)).collect();
            format!("\"{}\"", vals.join(", "))
        })
        .collect();
    let _ = writeln!(out, "{indent}values ( \\");
    for (k, row) in rows.iter().enumerate() {
        let sep = if k + 1 == rows.len() { "" } else { ", \\" };
        let _ = writeln!(out, "{indent}  {row}{sep}");
    }
    let _ = writeln!(out, "{indent});");
}

fn write_index(out: &mut String, indent: &str, name: &str, values: &[f64], scale: f64) {
    let vals: Vec<String> = values.iter().map(|v| format!("{:.5}", v * scale)).collect();
    let _ = writeln!(out, "{indent}{name} (\"{}\");", vals.join(", "));
}

fn write_table(out: &mut String, name: &str, arc: &ArcTable, values: &[Vec<f64>]) {
    let _ = writeln!(out, "        {name} (xtalk_tmpl) {{");
    write_index(out, "          ", "index_1", &arc.slews, 1e9);
    write_index(out, "          ", "index_2", &arc.loads, 1e15);
    write_values(out, "          ", values, 1e9);
    let _ = writeln!(out, "        }}");
}

/// Writes a Liberty library for `cells` (characterized tables paired with
/// the library they came from).
pub fn write(process: &Process, library: &Library, tables: &[CellTables]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library (xtalk_c05um) {{");
    let _ = writeln!(out, "  delay_model : table_lookup;");
    let _ = writeln!(out, "  time_unit : \"1ns\";");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  nom_voltage : {:.2};", process.vdd);
    let _ = writeln!(
        out,
        "  slew_lower_threshold_pct_rise : {:.0};",
        process.slew_lo_frac * 100.0
    );
    let _ = writeln!(
        out,
        "  slew_upper_threshold_pct_rise : {:.0};",
        process.slew_hi_frac * 100.0
    );
    let _ = writeln!(out, "  input_threshold_pct_rise : 50;");
    let _ = writeln!(out, "  output_threshold_pct_rise : 50;");
    let _ = writeln!(out);
    if let Some(first) = tables.iter().find(|t| !t.arcs.is_empty()) {
        let arc = &first.arcs[0];
        let _ = writeln!(out, "  lu_table_template (xtalk_tmpl) {{");
        let _ = writeln!(out, "    variable_1 : input_net_transition;");
        let _ = writeln!(out, "    variable_2 : total_output_net_capacitance;");
        write_index(&mut out, "    ", "index_1", &arc.slews, 1e9);
        write_index(&mut out, "    ", "index_2", &arc.loads, 1e15);
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out);
    }

    for t in tables {
        let Some(cell) = library.cell(&t.cell) else {
            continue;
        };
        let _ = writeln!(out, "  cell ({}) {{", cell.name);
        let _ = writeln!(out, "    area : {};", cell.area_sites);
        if cell.is_sequential() {
            let _ = writeln!(out, "    ff (IQ, IQN) {{");
            let _ = writeln!(out, "      next_state : \"D\";");
            let _ = writeln!(out, "      clocked_on : \"CK\";");
            let _ = writeln!(out, "    }}");
        }
        for (pin, name) in cell.inputs.iter().enumerate() {
            let _ = writeln!(out, "    pin ({name}) {{");
            let _ = writeln!(out, "      direction : input;");
            let _ = writeln!(
                out,
                "      capacitance : {:.4};",
                cell.input_cap.get(pin).copied().unwrap_or(0.0) * 1e15
            );
            if cell.is_sequential() && name == "CK" {
                let _ = writeln!(out, "      clock : true;");
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "    pin ({}) {{", cell.output);
        let _ = writeln!(out, "      direction : output;");
        let _ = writeln!(
            out,
            "      function : \"{}\";",
            function_string(cell.function, &cell.inputs)
        );
        for arc in &t.arcs {
            let related = &cell.inputs[arc.pin];
            // Emit one timing group per (pin, direction) pair.
            let _ = writeln!(out, "      timing () {{");
            let _ = writeln!(out, "        related_pin : \"{related}\";");
            let sense = match cell.arc_inverting(
                arc.pin,
                &cell
                    .sensitizing_side_values(arc.pin, process.vdd)
                    .unwrap_or_default(),
                process.vdd,
            ) {
                Some(true) => "negative_unate",
                Some(false) => "positive_unate",
                None => "non_unate",
            };
            let _ = writeln!(out, "        timing_sense : {sense};");
            if arc.output_rising {
                write_table(&mut out, "cell_rise", arc, &arc.delay);
                write_table(&mut out, "rise_transition", arc, &arc.out_slew);
            } else {
                write_table(&mut out, "cell_fall", arc, &arc.delay);
                write_table(&mut out, "fall_transition", arc, &arc.out_slew);
            }
            let _ = writeln!(out, "      }}");
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize_cell;
    use xtalk_tech::{Library, Process};

    #[test]
    fn liberty_output_well_formed() {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        let slews = [0.1e-9, 0.4e-9];
        let loads = [10e-15, 50e-15];
        let mut tables = Vec::new();
        for name in ["INVX1", "NAND2X1", "DFFX1"] {
            let cell = l.cell(name).expect("cell");
            tables.push(characterize_cell(&p, cell, &slews, &loads).expect("char"));
        }
        let text = write(&p, &l, &tables);
        // Structure.
        assert!(text.starts_with("library (xtalk_c05um) {"));
        assert!(text.trim_end().ends_with('}'));
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "balanced braces"
        );
        // Content.
        assert!(text.contains("cell (INVX1)"));
        assert!(text.contains("function : \"(!A)\";"));
        assert!(text.contains("cell_rise"));
        assert!(text.contains("fall_transition"));
        assert!(text.contains("timing_sense : negative_unate;"));
        assert!(text.contains("ff (IQ, IQN)"));
        assert!(text.contains("clock : true;"));
        // Values are nanoseconds: small positive numbers.
        assert!(text.contains("values ("));
    }

    #[test]
    fn function_strings() {
        assert_eq!(
            function_string(Function::Nand, &["A".into(), "B".into()]),
            "(!(A*B))"
        );
        assert_eq!(
            function_string(Function::Xor, &["A".into(), "B".into()]),
            "(A^B)"
        );
        assert_eq!(
            function_string(Function::Mux2, &["D0".into(), "D1".into(), "S".into()]),
            "((D0*!S)+(D1*S))"
        );
        assert_eq!(
            function_string(Function::Aoi21, &["A".into(), "B".into(), "C".into()]),
            "(!((A*B)+C))"
        );
    }
}
