//! Waveform engine: PWL waveforms and the transistor-level stage solver.
//!
//! This crate implements §2 and §3 of Ringe/Lindenkreuz/Barke (DATE 2000):
//!
//! - [`pwl`]: monotone piecewise-linear voltage [`Waveform`]s with crossing
//!   queries — the objects propagated through the timing graph.
//! - [`newton`]: the classical safeguarded Newton iteration used everywhere
//!   a scalar nonlinear equation must be solved (§3: "it uses the classical
//!   Newton approximation instead of the successive chord method").
//! - [`network`]: exact DC evaluation of series/parallel transistor networks
//!   against the table-based device models, including internal stack nodes.
//! - [`stage`]: backward-Euler integration of one complementary-CMOS stage
//!   driving a lumped load with coupling capacitances, implementing the
//!   paper's three-phase coupling model: grounded coupling cap while the
//!   aggressor is quiet, an instantaneous capacitive-divider *snap* back to
//!   `Vth` when it fires, grounded again afterwards, and the propagated
//!   waveform restarted at `Vth` (§2).
//! - [`sensitize`]: side-input assignment for multi-input stages so the
//!   switching pin controls the output (worst-case single-input switching).
//! - [`characterize`] and [`liberty`]: NLDM cell characterization over
//!   slew/load grids and a Liberty (`.lib`) writer, so the library can feed
//!   conventional gate-level flows.
//!
//! # Example: an inverter with and without an active aggressor
//!
//! ```
//! use xtalk_tech::{Library, Process};
//! use xtalk_wave::pwl::Waveform;
//! use xtalk_wave::stage::{Coupling, CouplingMode, Load, StageSolver};
//!
//! let process = Process::c05um();
//! let lib = Library::c05um(&process);
//! let inv = lib.cell("INVX1").expect("INVX1");
//! let solver = StageSolver::new(&process);
//! let input = Waveform::ramp(0.0, 0.2e-9, process.vdd, 0.0)?; // falling input
//!
//! let quiet = Load { cground: 30e-15, couplings: vec![Coupling::new(10e-15, CouplingMode::Grounded)] };
//! let noisy = Load { cground: 30e-15, couplings: vec![Coupling::new(10e-15, CouplingMode::Active)] };
//! let r_quiet = solver.solve(&inv.stages[0], 0, &input, &[], quiet)?;
//! let r_noisy = solver.solve(&inv.stages[0], 0, &input, &[], noisy)?;
//! let th = process.delay_threshold();
//! let quiet_cross = r_quiet.wave.crossing(th).expect("crosses");
//! let noisy_cross = r_noisy.wave.crossing(th).expect("crosses");
//! assert!(noisy_cross > quiet_cross, "an active aggressor adds delay");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The stage solver's hot loop must stay allocation-free: a redundant clone
// of a waveform or buffer in there silently reintroduces per-solve churn.
#![deny(clippy::redundant_clone)]

pub mod characterize;
pub mod liberty;
pub mod macromodel;
pub mod network;
pub mod newton;
pub mod pwl;
pub mod sensitize;
pub mod signature;
pub mod stage;

pub use pwl::{Waveform, WaveformError};
pub use signature::{canon_bits, StableHasher};
pub use stage::{
    Coupling, CouplingMode, Load, Snap, SolvedWave, StageResult, StageScratch, StageSolver,
};
