//! Transistor-level solution of one complementary-CMOS stage under
//! capacitive coupling — the paper's §2 + §3 in executable form.
//!
//! [`StageSolver::solve`] integrates the output node of a [`Stage`] with
//! backward Euler, solving the nonlinear device equations at every timestep
//! with Newton iteration against the table models. The output load is a
//! lumped ground capacitance plus any number of coupling capacitances, each
//! in one of three modes:
//!
//! - [`CouplingMode::Grounded`]: the aggressor is provably quiet; the cap is
//!   an ordinary grounded load at face value (paper's "best case").
//! - [`CouplingMode::Doubled`]: grounded at twice its value — the classical
//!   static crosstalk margin the paper argues against ("static doubled").
//! - [`CouplingMode::Active`]: the paper's three-phase worst-case model.
//!   The cap loads the net as a grounded cap until the victim waveform
//!   reaches the trigger voltage `Vth + dV` (with `dV = Vdd*Cc/Ctot` the
//!   capacitive-divider step of an instantaneous opposite transition on the
//!   aggressor); at that instant the victim snaps back to `Vth`, the cap
//!   becomes passive again, and the *propagated* waveform is restarted at
//!   `Vth` — so crosstalk appears purely as extra delay and waveforms stay
//!   monotone.

use std::fmt;

use xtalk_tech::cell::Stage;
use xtalk_tech::mosfet::DeviceType;
use xtalk_tech::Process;

use crate::network::{NetworkEval, WarmStart};
use crate::pwl::{Waveform, WaveformError};

/// How a coupling capacitance participates in a stage solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CouplingMode {
    /// Aggressor quiet: grounded cap at face value.
    Grounded,
    /// Classical pessimism: grounded cap at twice its value.
    Doubled,
    /// Worst-case active coupling per the three-phase model.
    Active,
    /// Aggressor switching in the *same* direction simultaneously: the
    /// charge across the cap barely changes, so it loads the victim with
    /// (at most) nothing — the fastest case. Used by min-delay (hold)
    /// analysis, the extension the paper leaves out of scope ("switching in
    /// the same direction may occur, but this is not within the scope of
    /// this discussion", §5.1).
    Assisting,
}

/// One coupling capacitance on the victim net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coupling {
    /// Capacitance to the aggressor wire, farads.
    pub c: f64,
    /// Treatment during this solve.
    pub mode: CouplingMode,
}

impl Coupling {
    /// Creates a coupling capacitance.
    pub fn new(c: f64, mode: CouplingMode) -> Self {
        Coupling { c, mode }
    }
}

/// The lumped load a stage drives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Load {
    /// Grounded capacitance: diffusion + wire-to-ground + fan-in pin caps.
    pub cground: f64,
    /// Coupling capacitances with their modes.
    pub couplings: Vec<Coupling>,
}

impl Load {
    /// A purely grounded load.
    pub fn grounded(cground: f64) -> Self {
        Load {
            cground,
            couplings: Vec::new(),
        }
    }

    /// Total capacitance seen by the integrator (Active and Grounded caps
    /// load at face value, Doubled at twice).
    pub fn total_cap(&self) -> f64 {
        self.cground
            + self
                .couplings
                .iter()
                .map(|c| match c.mode {
                    CouplingMode::Grounded | CouplingMode::Active => c.c,
                    CouplingMode::Doubled => 2.0 * c.c,
                    CouplingMode::Assisting => 0.0,
                })
                .sum::<f64>()
    }
}

/// A coupling event fired during integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snap {
    /// Time of the aggressor transition.
    pub time: f64,
    /// Magnitude of the capacitive-divider step, volts.
    pub delta_v: f64,
}

/// Result of a stage solution.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResult {
    /// The propagated output waveform (restarted at `Vth` after the last
    /// snap, per the paper's model).
    pub wave: Waveform,
    /// Coupling events that fired, in time order.
    pub snaps: Vec<Snap>,
    /// Raw integration trace including the snap dips (for plotting and for
    /// the Fig. 1 reproduction); not monotone when snaps fired.
    pub raw: Vec<(f64, f64)>,
    /// Timesteps taken.
    pub steps: usize,
    /// Newton iterations consumed, summed over all timesteps.
    pub newton_iters: usize,
}

/// Lean result of [`StageSolver::solve_with`]: the propagated waveform plus
/// work counters, without the raw trace and snap clones of [`StageResult`]
/// (those stay in the [`StageScratch`] until the next solve).
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedWave {
    /// The propagated output waveform.
    pub wave: Waveform,
    /// Timesteps taken.
    pub steps: usize,
    /// Newton iterations consumed, summed over all timesteps.
    pub newton_iters: usize,
}

/// Reusable workspace for stage solves.
///
/// The integrator's hot loop needs several growable buffers (PWL trace,
/// pending coupling events, node-voltage side values, series-stack
/// warm-start storage). Allocating them per solve dominates short solves,
/// so long-lived owners — a wavefront worker, the serial pass driver, a
/// bench harness — hold one `StageScratch` and pass it to
/// [`StageSolver::solve_with`]. Every buffer is fully reset at the start of
/// each solve, so results are bit-identical to a fresh scratch; only the
/// allocations persist.
#[derive(Debug, Clone, Default)]
pub struct StageScratch {
    gates: Vec<f64>,
    pending: Vec<(f64, f64)>,
    points: Vec<(f64, f64)>,
    snaps: Vec<Snap>,
    warm_p: WarmStart,
    warm_n: WarmStart,
}

impl StageScratch {
    /// Creates an empty scratch workspace.
    pub fn new() -> Self {
        StageScratch::default()
    }
}

impl StageResult {
    /// Stage delay: output crossing of `threshold` minus input crossing.
    pub fn delay_from(&self, input: &Waveform, threshold: f64) -> Option<f64> {
        Some(self.wave.crossing(threshold)? - input.crossing(threshold)?)
    }
}

/// Errors from [`StageSolver::solve`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StageError {
    /// A non-switching input slot has no side value.
    MissingSideValue {
        /// The slot lacking a value.
        slot: usize,
    },
    /// The switching slot index is out of range.
    BadSlot {
        /// The offending slot.
        slot: usize,
    },
    /// The integrator exceeded its step budget.
    DidNotConverge,
    /// The integration produced an invalid waveform (should not happen).
    Waveform(WaveformError),
    /// A load capacitance or side voltage is NaN or infinite. Rejected up
    /// front: a NaN capacitance would otherwise vanish into
    /// `total_cap().max(1e-18)` (since `f64::max` ignores NaN) and yield a
    /// silently *optimistic* delay.
    NonFiniteInput,
    /// The Newton iterate left the finite domain and the bisection fallback
    /// could not recover it (e.g. a poisoned device table).
    NumericalBlowup,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageError::MissingSideValue { slot } => {
                write!(f, "no side value for input slot {slot}")
            }
            StageError::BadSlot { slot } => write!(f, "switching slot {slot} out of range"),
            StageError::DidNotConverge => write!(f, "stage integration exceeded step budget"),
            StageError::Waveform(e) => write!(f, "invalid output waveform: {e}"),
            StageError::NonFiniteInput => {
                write!(f, "stage input has a non-finite load or side voltage")
            }
            StageError::NumericalBlowup => {
                write!(f, "stage integration produced a non-finite node voltage")
            }
        }
    }
}

impl std::error::Error for StageError {}

impl From<WaveformError> for StageError {
    fn from(e: WaveformError) -> Self {
        StageError::Waveform(e)
    }
}

/// Transistor-level solver for single stages.
#[derive(Debug, Clone, Copy)]
pub struct StageSolver<'a> {
    process: &'a Process,
    warm_newton: bool,
}

impl<'a> StageSolver<'a> {
    /// Creates a solver bound to a process (device tables, Vdd, thresholds).
    ///
    /// Warm-started Newton (trajectory extrapolation of the initial guess,
    /// see [`StageSolver::with_warm_newton`]) is on by default.
    pub fn new(process: &'a Process) -> Self {
        StageSolver {
            process,
            warm_newton: true,
        }
    }

    /// Enables or disables the warm-started Newton initial guess.
    ///
    /// When on, each backward-Euler step seeds its Newton iteration by
    /// linearly extrapolating the last two *accepted* trajectory points
    /// instead of starting from the previous node voltage. The guess is a
    /// pure function of the solve inputs — results stay deterministic and
    /// independent of scheduling — but it does change the converged bits
    /// (fewer, different Newton steps), so A/B comparisons against the
    /// cold-start integrator must toggle this explicitly.
    #[must_use]
    pub fn with_warm_newton(mut self, warm: bool) -> Self {
        self.warm_newton = warm;
        self
    }

    /// The process this solver evaluates against.
    pub fn process(&self) -> &Process {
        self.process
    }

    /// Solves the stage's output transition for a transition of `input` on
    /// input slot `switching`, with the remaining inputs held at
    /// `side[slot]` volts (`side` may be empty for single-input stages).
    ///
    /// The output direction is the complement of the input direction (all
    /// stages are inverting complementary CMOS).
    ///
    /// Allocates a fresh [`StageScratch`] per call; hot loops should hold a
    /// scratch and call [`StageSolver::solve_with`] instead.
    ///
    /// # Errors
    ///
    /// See [`StageError`].
    pub fn solve(
        &self,
        stage: &Stage,
        switching: usize,
        input: &Waveform,
        side: &[f64],
        load: Load,
    ) -> Result<StageResult, StageError> {
        let mut scratch = StageScratch::new();
        let (wave, steps, newton_iters) =
            self.run(&mut scratch, stage, switching, input, side, &load)?;
        Ok(StageResult {
            wave,
            snaps: std::mem::take(&mut scratch.snaps),
            raw: std::mem::take(&mut scratch.points),
            steps,
            newton_iters,
        })
    }

    /// Like [`StageSolver::solve`] but reuses `scratch`'s buffers, borrows
    /// the load (the caller keeps ownership for caching layers) and skips
    /// materialising the raw trace and snap list, returning the lean
    /// [`SolvedWave`]. Results are bit-identical to [`StageSolver::solve`]
    /// for the same inputs regardless of what the scratch previously held.
    ///
    /// # Errors
    ///
    /// See [`StageError`].
    pub fn solve_with(
        &self,
        scratch: &mut StageScratch,
        stage: &Stage,
        switching: usize,
        input: &Waveform,
        side: &[f64],
        load: &Load,
    ) -> Result<SolvedWave, StageError> {
        let (wave, steps, newton_iters) = self.run(scratch, stage, switching, input, side, load)?;
        Ok(SolvedWave {
            wave,
            steps,
            newton_iters,
        })
    }

    /// The shared integrator behind [`StageSolver::solve`] and
    /// [`StageSolver::solve_with`]. Returns `(wave, steps, newton_iters)`;
    /// the raw trace and fired snaps are left in `scratch`.
    fn run(
        &self,
        scratch: &mut StageScratch,
        stage: &Stage,
        switching: usize,
        input: &Waveform,
        side: &[f64],
        load: &Load,
    ) -> Result<(Waveform, usize, usize), StageError> {
        // Disjoint borrows of every buffer; each is fully reset below, so a
        // reused scratch is indistinguishable from a fresh one.
        let StageScratch {
            gates,
            pending,
            points,
            snaps,
            warm_p,
            warm_n,
        } = scratch;

        let n_slots = stage.inputs.len();
        if switching >= n_slots {
            return Err(StageError::BadSlot { slot: switching });
        }
        gates.clear();
        gates.resize(n_slots, 0.0);
        for (slot, gate) in gates.iter_mut().enumerate() {
            if slot == switching {
                continue;
            }
            *gate = *side
                .get(slot)
                .ok_or(StageError::MissingSideValue { slot })?;
        }

        if !load.cground.is_finite()
            || load.couplings.iter().any(|c| !c.c.is_finite())
            || gates.iter().any(|g| !g.is_finite())
        {
            return Err(StageError::NonFiniteInput);
        }

        let vdd = self.process.vdd;
        let vth = self.process.coupling_vth;
        let rising = !input.is_rising();
        let ctot = load.total_cap().max(1e-18);

        // Active couplings: trigger voltages and divider steps (§2).
        pending.clear();
        pending.extend(
            load.couplings
                .iter()
                .filter(|c| c.mode == CouplingMode::Active)
                .map(|c| {
                    let dv = vdd * c.c / ctot;
                    let trig = if rising {
                        (vth + dv).min(0.98 * vdd)
                    } else {
                        (vdd - vth - dv).max(0.02 * vdd)
                    };
                    (trig, dv)
                }),
        );
        if rising {
            pending.sort_by(|a, b| a.0.total_cmp(&b.0));
        } else {
            pending.sort_by(|a, b| b.0.total_cmp(&a.0));
        }
        let reset_v = if rising { vth } else { vdd - vth };

        let ev_p = NetworkEval::new(self.process, DeviceType::Pmos);
        let ev_n = NetworkEval::new(self.process, DeviceType::Nmos);
        warm_p.reset();
        warm_n.reset();

        let t0 = input.start_time();
        let input_end = input.end_time();
        let input_dur = (input_end - t0).max(1e-14);
        let mut t = t0;
        let mut v = if rising { 0.0 } else { vdd };
        points.clear();
        points.push((t, v));
        snaps.clear();
        // Previous *accepted* trajectory point, for the warm-started Newton
        // initial guess. None across discontinuities (start, snap restarts).
        let mut last_accepted: Option<(f64, f64)> = None;

        let h_min = 1e-15;
        let h_max = 2e-10;
        let mut h = (input_dur / 24.0).clamp(1e-13, h_max);
        let end_hi = 0.995 * vdd;
        let end_lo = 0.005 * vdd;

        let max_steps = 200_000usize;
        let mut steps = 0usize;
        let mut newton_iters = 0usize;
        loop {
            steps += 1;
            if steps > max_steps {
                return Err(StageError::DidNotConverge);
            }
            // Keep resolution while the input is still moving.
            let h_eff = if t < input_end {
                h.min(input_dur / 10.0)
            } else {
                h
            };
            let t1 = t + h_eff;
            let vin = input.value_at(t1).clamp(0.0, vdd);
            gates[switching] = vin;

            // Backward Euler: ctot*(v1 - v)/h = i_net(t1, v1), Newton on v1.
            // Warm start: extrapolate the last two accepted points to t1 —
            // on the smooth segments between snaps the trajectory is locally
            // linear, so the seed lands within one Newton step of the root.
            let mut v1 = v;
            if self.warm_newton {
                if let Some((tp, vp)) = last_accepted {
                    let dt = t - tp;
                    if dt > 0.0 {
                        let guess = v + (v - vp) / dt * h_eff;
                        if guess.is_finite() {
                            v1 = guess.clamp(-0.5, vdd + 0.5);
                        }
                    }
                }
            }
            for _ in 0..14 {
                newton_iters += 1;
                let pu = ev_p.current(&stage.pullup, v1, vdd, gates, &mut *warm_p);
                let pd = ev_n.current(&stage.pulldown, v1, 0.0, gates, &mut *warm_n);
                let i_net = -(pu.i + pd.i); // current *into* the output node
                let di_dv = -(pu.di_da + pd.di_da);
                let g = ctot * (v1 - v) / h_eff - i_net;
                let dg = ctot / h_eff - di_dv;
                if dg.abs() < 1e-30 {
                    break;
                }
                let step = g / dg;
                let next = v1 - step;
                if next.is_finite() {
                    v1 = next.clamp(-0.5, vdd + 0.5);
                    if step.abs() < 1e-6 {
                        break;
                    }
                } else {
                    // Newton blew up (non-finite residual or derivative, e.g.
                    // a corrupted table entry): damp to a bisection step
                    // toward the midpoint of the static bracket
                    // [-0.5, vdd + 0.5] so the iterate stays finite.
                    v1 = 0.5 * (v1 + 0.5 * vdd);
                }
            }
            if !v1.is_finite() {
                return Err(StageError::NumericalBlowup);
            }

            // Step-size control: redo overly large steps.
            let dv_step = (v1 - v).abs();
            if dv_step > vdd / 12.0 && h_eff > 2.0 * h_min {
                h = (h_eff * 0.5).max(h_min);
                continue;
            }
            last_accepted = Some((t, v));
            t = t1;
            v = v1;
            points.push((t, v));

            // Coupling events (§2): snap back to Vth when the trigger is hit.
            while let Some(&(trig, dv)) = pending.first() {
                let hit = if rising { v >= trig } else { v <= trig };
                if !hit {
                    break;
                }
                // Interpolate the exact crossing inside the last segment.
                let (tp, vp) = points[points.len() - 2];
                let frac = if (v - vp).abs() > 1e-15 {
                    ((trig - vp) / (v - vp)).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let t_cross = tp + (t - tp) * frac;
                points.pop();
                // Guard against zero-width segments.
                let t_cross = t_cross.max(tp + 1e-16);
                points.push((t_cross, trig));
                let t_after = t_cross + 1e-15;
                points.push((t_after, reset_v));
                snaps.push(Snap {
                    time: t_cross,
                    delta_v: dv,
                });
                pending.remove(0);
                t = t_after;
                v = reset_v;
                // The snap is a discontinuity — extrapolating across it
                // would seed Newton far from the restarted trajectory.
                last_accepted = None;
            }

            // Grow the step when the node barely moves.
            if dv_step < vdd / 150.0 {
                h = (h * 1.6).min(h_max);
            }

            let done = pending.is_empty()
                && if rising { v >= end_hi } else { v <= end_lo }
                && t >= input_end;
            if done {
                break;
            }
        }

        // Propagated waveform: everything before the last snap is discarded
        // and the waveform restarts at Vth (paper §2).
        let start_idx = if let Some(last) = snaps.last() {
            points
                .iter()
                .position(|&(t, _)| t >= last.time + 0.5e-15)
                .unwrap_or(points.len() - 2)
        } else {
            0
        };
        let mut final_pts: Vec<(f64, f64)> = points[start_idx..].to_vec();
        // Monotone clamp against sub-microvolt Newton noise near the rails.
        if rising {
            let mut run = f64::NEG_INFINITY;
            for p in &mut final_pts {
                run = run.max(p.1);
                p.1 = run;
            }
        } else {
            let mut run = f64::INFINITY;
            for p in &mut final_pts {
                run = run.min(p.1);
                p.1 = run;
            }
        }
        if final_pts.len() < 2 {
            let last = *points.last().expect("at least one point");
            final_pts = vec![(last.0 - 1e-15, reset_v), last];
        }
        let wave = Waveform::new(final_pts)?.simplify(2e-3);
        Ok((wave, steps, newton_iters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{Library, Process};

    fn setup() -> (Process, Library) {
        let p = Process::c05um();
        let l = Library::c05um(&p);
        (p, l)
    }

    fn falling_input(p: &Process) -> Waveform {
        Waveform::ramp(0.0, 0.2e-9, p.vdd, 0.0).expect("ramp")
    }

    fn rising_input(p: &Process) -> Waveform {
        Waveform::ramp(0.0, 0.2e-9, 0.0, p.vdd).expect("ramp")
    }

    #[test]
    fn inverter_rise_delay_plausible() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        // FO4-ish load.
        let load = Load::grounded(4.0 * inv.input_cap[0] + 6e-15);
        let r = solver
            .solve(&inv.stages[0], 0, &input, &[], load)
            .expect("solve");
        assert!(r.wave.is_rising());
        let d = r.delay_from(&input, p.delay_threshold()).expect("delay");
        // 0.5um FO4: tens to a few hundred ps.
        assert!(d > 20e-12 && d < 500e-12, "FO4 rise delay {d}");
    }

    #[test]
    fn inverter_fall_delay_plausible() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = rising_input(&p);
        let load = Load::grounded(4.0 * inv.input_cap[0] + 6e-15);
        let r = solver
            .solve(&inv.stages[0], 0, &input, &[], load)
            .expect("solve");
        assert!(!r.wave.is_rising());
        let d = r.delay_from(&input, p.delay_threshold()).expect("delay");
        assert!(d > 10e-12 && d < 500e-12, "FO4 fall delay {d}");
    }

    #[test]
    fn heavier_load_is_slower() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        let d1 = solver
            .solve(&inv.stages[0], 0, &input, &[], Load::grounded(20e-15))
            .expect("light")
            .delay_from(&input, p.delay_threshold())
            .expect("delay");
        let d2 = solver
            .solve(&inv.stages[0], 0, &input, &[], Load::grounded(80e-15))
            .expect("heavy")
            .delay_from(&input, p.delay_threshold())
            .expect("delay");
        assert!(d2 > 2.0 * d1, "4x load must be much slower: {d1} vs {d2}");
    }

    #[test]
    fn nand_slower_than_inverter_for_same_load() {
        let (p, l) = setup();
        let solver = StageSolver::new(&p);
        let input = rising_input(&p); // output falls through the NMOS stack
        let load = Load::grounded(40e-15);
        let inv = l.cell("INVX1").expect("inv");
        let nand = l.cell("NAND2X1").expect("nand");
        let d_inv = solver
            .solve(&inv.stages[0], 0, &input, &[], load.clone())
            .expect("inv")
            .delay_from(&input, p.delay_threshold())
            .expect("delay");
        let d_nand = solver
            .solve(&nand.stages[0], 0, &input, &[0.0, p.vdd], load)
            .expect("nand")
            .delay_from(&input, p.delay_threshold())
            .expect("delay");
        // NAND2 NMOS is upsized 2x to compensate the stack, so the fall
        // delays are close; the stack plus higher diffusion still makes it
        // no faster than the inverter.
        assert!(
            d_nand > 0.6 * d_inv && d_nand < 1.6 * d_inv,
            "NAND2 fall {d_nand} vs INV fall {d_inv}"
        );
        // The rise arc uses a single PMOS of the same size as the inverter's
        // but carries more diffusion, so it must not be faster.
        let input_f = falling_input(&p);
        let r_inv = solver
            .solve(&inv.stages[0], 0, &input_f, &[], Load::grounded(40e-15))
            .expect("inv rise")
            .delay_from(&input_f, p.delay_threshold())
            .expect("delay");
        let r_nand = solver
            .solve(
                &nand.stages[0],
                0,
                &input_f,
                &[p.vdd, p.vdd],
                Load::grounded(40e-15),
            )
            .expect("nand rise")
            .delay_from(&input_f, p.delay_threshold())
            .expect("delay");
        assert!(
            r_nand > 0.95 * r_inv,
            "NAND2 rise {r_nand} vs INV rise {r_inv}"
        );
    }

    #[test]
    fn coupling_mode_ordering_matches_paper() {
        // best (grounded) < doubled < active, for the same coupling cap.
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        let cc = 15e-15;
        let mk = |mode| Load {
            cground: 25e-15,
            couplings: vec![Coupling::new(cc, mode)],
        };
        let th = p.delay_threshold();
        let d = |mode| {
            solver
                .solve(&inv.stages[0], 0, &input, &[], mk(mode))
                .expect("solve")
                .delay_from(&input, th)
                .expect("delay")
        };
        let best = d(CouplingMode::Grounded);
        let doubled = d(CouplingMode::Doubled);
        let active = d(CouplingMode::Active);
        assert!(best < doubled, "grounded {best} < doubled {doubled}");
        assert!(
            doubled < active,
            "the active model exceeds the passive doubled-cap model: {doubled} vs {active}"
        );
    }

    #[test]
    fn assisting_coupling_is_fastest() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        let th = p.delay_threshold();
        let d = |mode| {
            solver
                .solve(
                    &inv.stages[0],
                    0,
                    &input,
                    &[],
                    Load {
                        cground: 25e-15,
                        couplings: vec![Coupling::new(15e-15, mode)],
                    },
                )
                .expect("solve")
                .delay_from(&input, th)
                .expect("delay")
        };
        let assisting = d(CouplingMode::Assisting);
        let grounded = d(CouplingMode::Grounded);
        let active = d(CouplingMode::Active);
        assert!(assisting < grounded, "{assisting} < {grounded}");
        assert!(grounded < active);
    }

    #[test]
    fn active_coupling_fires_one_snap_per_cap() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        let load = Load {
            cground: 25e-15,
            couplings: vec![
                Coupling::new(8e-15, CouplingMode::Active),
                Coupling::new(5e-15, CouplingMode::Active),
                Coupling::new(3e-15, CouplingMode::Grounded),
            ],
        };
        let r = solver
            .solve(&inv.stages[0], 0, &input, &[], load)
            .expect("solve");
        assert_eq!(r.snaps.len(), 2);
        assert!(r.snaps[0].time <= r.snaps[1].time);
        // The propagated waveform restarts at Vth.
        assert!((r.wave.initial_value() - p.coupling_vth).abs() < 1.5e-2);
        assert!(r.wave.is_rising());
    }

    #[test]
    fn falling_victim_snaps_toward_vdd() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = rising_input(&p); // output falls
        let load = Load {
            cground: 25e-15,
            couplings: vec![Coupling::new(10e-15, CouplingMode::Active)],
        };
        let r = solver
            .solve(&inv.stages[0], 0, &input, &[], load)
            .expect("solve");
        assert_eq!(r.snaps.len(), 1);
        assert!(!r.wave.is_rising());
        assert!((r.wave.initial_value() - (p.vdd - p.coupling_vth)).abs() < 1.5e-2);
    }

    #[test]
    fn side_value_required_for_multi_input() {
        let (p, l) = setup();
        let nand = l.cell("NAND2X1").expect("nand");
        let solver = StageSolver::new(&p);
        let input = rising_input(&p);
        let err = solver
            .solve(&nand.stages[0], 0, &input, &[], Load::grounded(10e-15))
            .unwrap_err();
        assert_eq!(err, StageError::MissingSideValue { slot: 1 });
    }

    #[test]
    fn bad_slot_rejected() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = rising_input(&p);
        let err = solver
            .solve(&inv.stages[0], 3, &input, &[], Load::grounded(10e-15))
            .unwrap_err();
        assert_eq!(err, StageError::BadSlot { slot: 3 });
    }

    #[test]
    fn output_wave_is_full_swing_without_coupling() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        let r = solver
            .solve(&inv.stages[0], 0, &input, &[], Load::grounded(30e-15))
            .expect("solve");
        assert!(r.wave.initial_value() < 0.02 * p.vdd);
        assert!(r.wave.final_value() > 0.97 * p.vdd);
        assert!(r.snaps.is_empty());
        assert!(r.wave.points().len() <= 64, "simplified representation");
    }

    #[test]
    fn faster_input_gives_faster_output() {
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let th = p.delay_threshold();
        let fast = Waveform::ramp(0.0, 0.05e-9, p.vdd, 0.0).expect("ramp");
        let slow = Waveform::ramp(0.0, 0.8e-9, p.vdd, 0.0).expect("ramp");
        let d_fast = solver
            .solve(&inv.stages[0], 0, &fast, &[], Load::grounded(40e-15))
            .expect("fast")
            .delay_from(&fast, th)
            .expect("delay");
        let d_slow = solver
            .solve(&inv.stages[0], 0, &slow, &[], Load::grounded(40e-15))
            .expect("slow")
            .delay_from(&slow, th)
            .expect("delay");
        assert!(d_fast < d_slow, "{d_fast} vs {d_slow}");
    }

    #[test]
    fn non_finite_load_rejected_not_silently_optimistic() {
        // f64::max ignores NaN, so a NaN cap used to fall through
        // total_cap().max(1e-18) as a near-zero load — a silently fast,
        // optimistic solve. It must be a typed error instead.
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        for bad in [f64::NAN, f64::INFINITY] {
            let err = solver
                .solve(&inv.stages[0], 0, &input, &[], Load::grounded(bad))
                .unwrap_err();
            assert_eq!(err, StageError::NonFiniteInput);
            let err = solver
                .solve(
                    &inv.stages[0],
                    0,
                    &input,
                    &[],
                    Load {
                        cground: 20e-15,
                        couplings: vec![Coupling::new(bad, CouplingMode::Active)],
                    },
                )
                .unwrap_err();
            assert_eq!(err, StageError::NonFiniteInput);
        }
    }

    #[test]
    fn non_finite_side_value_rejected() {
        let (p, l) = setup();
        let nand = l.cell("NAND2X1").expect("nand");
        let solver = StageSolver::new(&p);
        let input = rising_input(&p);
        let err = solver
            .solve(
                &nand.stages[0],
                0,
                &input,
                &[0.0, f64::NAN],
                Load::grounded(10e-15),
            )
            .unwrap_err();
        assert_eq!(err, StageError::NonFiniteInput);
    }

    #[test]
    fn snap_extra_delay_roughly_matches_recharge_time() {
        // The worst-case extra delay of one snap is the time to recharge
        // from Vth to Vth + dV. Check it is within a factor-2 band of the
        // simple estimate dV * C / I(mid).
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let solver = StageSolver::new(&p);
        let input = falling_input(&p);
        let cc = 12e-15;
        let cg = 30e-15;
        let th = p.delay_threshold();
        let quiet = solver
            .solve(
                &inv.stages[0],
                0,
                &input,
                &[],
                Load {
                    cground: cg,
                    couplings: vec![Coupling::new(cc, CouplingMode::Grounded)],
                },
            )
            .expect("quiet")
            .delay_from(&input, th)
            .expect("delay");
        let noisy = solver
            .solve(
                &inv.stages[0],
                0,
                &input,
                &[],
                Load {
                    cground: cg,
                    couplings: vec![Coupling::new(cc, CouplingMode::Active)],
                },
            )
            .expect("noisy")
            .delay_from(&input, th)
            .expect("delay");
        let extra = noisy - quiet;
        assert!(extra > 0.0);
        let ctot = cg + cc;
        let dv = p.vdd * cc / ctot;
        // Mid-rise PMOS current of INVX1 at vgs = vdd.
        let i = p
            .table(DeviceType::Pmos)
            .ids(p.vdd, p.vdd - p.coupling_vth, 4.0e-6);
        let est = dv * ctot / i;
        assert!(
            extra > 0.3 * est && extra < 3.0 * est,
            "extra {extra} vs estimate {est}"
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // solve_with over one reused scratch must reproduce solve() exactly
        // — same waveform bits, same step and iteration counts — no matter
        // what the previous solve left in the buffers.
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let nand = l.cell("NAND2X1").expect("nand");
        let solver = StageSolver::new(&p);
        let mut scratch = StageScratch::new();
        let inputs = [falling_input(&p), rising_input(&p)];
        let loads = [
            Load::grounded(12e-15),
            Load {
                cground: 25e-15,
                couplings: vec![Coupling::new(10e-15, CouplingMode::Active)],
            },
        ];
        let nand_side = [p.vdd, p.vdd];
        let arcs: [(&Stage, &[f64]); 2] = [(&inv.stages[0], &[]), (&nand.stages[0], &nand_side)];
        for input in &inputs {
            for load in &loads {
                for &(stage, side) in &arcs {
                    let fresh = solver
                        .solve(stage, 0, input, side, load.clone())
                        .expect("fresh solve");
                    let lean = solver
                        .solve_with(&mut scratch, stage, 0, input, side, load)
                        .expect("scratch solve");
                    assert_eq!(fresh.wave, lean.wave, "waveform bits differ");
                    assert_eq!(fresh.steps, lean.steps);
                    assert_eq!(fresh.newton_iters, lean.newton_iters);
                }
            }
        }
    }

    #[test]
    fn warm_newton_cuts_iterations() {
        // The extrapolated initial guess must strictly reduce Newton work on
        // a plain smooth transition while landing on (numerically) the same
        // delay — both integrators converge to the 1e-6 V step tolerance.
        let (p, l) = setup();
        let inv = l.cell("INVX1").expect("inv");
        let warm = StageSolver::new(&p);
        let cold = StageSolver::new(&p).with_warm_newton(false);
        let input = falling_input(&p);
        let load = Load::grounded(40e-15);
        let rw = warm
            .solve(&inv.stages[0], 0, &input, &[], load.clone())
            .expect("warm");
        let rc = cold
            .solve(&inv.stages[0], 0, &input, &[], load)
            .expect("cold");
        assert!(
            rw.newton_iters < rc.newton_iters,
            "warm {} must beat cold {}",
            rw.newton_iters,
            rc.newton_iters
        );
        assert!(rw.newton_iters > 0 && rc.newton_iters >= rc.steps);
        let th = p.delay_threshold();
        let dw = rw.delay_from(&input, th).expect("warm delay");
        let dc = rc.delay_from(&input, th).expect("cold delay");
        assert!(
            (dw - dc).abs() < 0.02 * dc,
            "warm delay {dw} vs cold delay {dc}"
        );
    }
}
