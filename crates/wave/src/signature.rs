//! Stable, canonical bit-signatures of waveforms.
//!
//! The STA engine memoizes transistor-level stage solves across passes and
//! modes. A memo key must (a) be *exact* — two keys compare equal only when
//! the solver inputs are bit-identical, so a cache hit can never change a
//! reported arrival — and (b) hash *stably*, independent of pointer values,
//! `HashMap` seeds or platform, so counters and shard assignment are
//! reproducible run to run.
//!
//! The only "quantization" performed is canonicalization of IEEE-754
//! equal-but-distinct encodings: `-0.0` maps to `+0.0` (they are
//! numerically equal inputs, so the solve result is identical). Everything
//! else is the raw bit pattern; accuracy impact is exactly zero.

use crate::pwl::Waveform;

/// Canonical bit pattern of an `f64` for exact-match keys: `-0.0`
/// normalizes to `+0.0`, every other value keeps its IEEE-754 encoding.
#[inline]
#[must_use]
pub fn canon_bits(x: f64) -> u64 {
    if x == 0.0 {
        0
    } else {
        x.to_bits()
    }
}

/// A seed-free FNV-1a 64-bit hasher: deterministic across runs, platforms
/// and processes, unlike the std `HashMap` hasher.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher {
            state: Self::OFFSET,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds one `f64` through [`canon_bits`].
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(canon_bits(v));
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Waveform {
    /// The waveform's points as canonical `(time, voltage)` bit pairs —
    /// the exact-match identity of the waveform for memoization.
    #[must_use]
    pub fn canon_points(&self) -> Vec<(u64, u64)> {
        self.points()
            .iter()
            .map(|&(t, v)| (canon_bits(t), canon_bits(v)))
            .collect()
    }

    /// A stable 64-bit signature of the waveform (FNV-1a over
    /// [`Waveform::canon_points`]): equal for bit-identical waveforms,
    /// reproducible across runs.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.points().len() as u64);
        for &(t, v) in self.points() {
            h.write_f64(t);
            h.write_f64(v);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_zero_canonicalizes() {
        assert_eq!(canon_bits(-0.0), canon_bits(0.0));
        assert_ne!(canon_bits(1.0), canon_bits(-1.0));
        assert_ne!(canon_bits(1.0), canon_bits(1.0 + f64::EPSILON));
    }

    #[test]
    // The clone is the point: a clone must hash identically to its source.
    #[allow(clippy::redundant_clone)]
    fn signature_is_stable_and_discriminating() {
        let a = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let b = Waveform::ramp(0.0, 1e-9, 0.0, 3.3).expect("ramp");
        let c = Waveform::ramp(0.0, 1.1e-9, 0.0, 3.3).expect("ramp");
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        // FNV is seed-free: the value is a constant of the input.
        assert_eq!(a.signature(), a.clone().signature());
    }

    #[test]
    fn canon_points_match_points() {
        let w = Waveform::ramp(2e-10, 5e-10, 3.3, 0.0).expect("ramp");
        let pts = w.canon_points();
        assert_eq!(pts.len(), w.points().len());
        for (&(t, v), &(tb, vb)) in w.points().iter().zip(&pts) {
            assert_eq!(canon_bits(t), tb);
            assert_eq!(canon_bits(v), vb);
        }
    }
}
