//! Characterized stage macromodels: the table-lookup fast path.
//!
//! The paper's refinement loops (§5) consume only a handful of scalar
//! features of each stage response — the delay-threshold crossing, the
//! 10–90% transition time, the entry into the coupling threshold band and
//! the quiescent time. All four are smooth functions of the stage's input
//! slew, its total effective load and (for a coupled solve) the active
//! coupling ratio, which is exactly what an NLDM-style characterized table
//! captures. This module pre-characterizes each timing arc against the
//! transistor solver on a fixed grid and then answers in-grid stage solves
//! by interpolation, with a *measured, conservative* error bound:
//!
//! - **Exact load folding.** The backward-Euler integrator depends on a
//!   quiet load only through `Load::total_cap()`, and on a single active
//!   coupling only through `(ctot, c_active/ctot)` (the capacitive-divider
//!   step is `vdd * c / ctot`). A runtime load therefore maps *exactly*
//!   onto a characterization load of the same `(L, r)`; only interpolation
//!   between grid points and input-shape substitution are approximate.
//! - **Certified padding.** After building the tables, a validation pass
//!   probes grid-cell midpoints and realistic (solver-shaped, wire-
//!   stretched) inputs, measuring the worst *optimistic* residual of each
//!   tabulated quantity (table earlier/narrower than the transistor solve).
//!   That residual, inflated by a safety margin, becomes the arc's pad:
//!   reported delays are padded *later*, slews *wider*, quiescent times
//!   *later* and threshold-band entries *earlier*, so a table answer is
//!   never optimistic for max-delay analysis. The worst *pessimistic*
//!   residual plus the pad is the arc's certified bound — how far on the
//!   conservative side of the transistor solve a padded answer can land.
//! - **Bounded-error admission.** An arc whose certified bounds exceed the
//!   admission tolerances ([`TOL_DELAY`], [`TOL_SLEW`], [`TOL_AUX`]) is
//!   marked unusable and every query falls back to the full Newton solve,
//!   as does any query outside the grid, with two or more active
//!   couplings, with an assisting coupling, or with an unclassifiable
//!   input shape.
//!
//! Models live in a process-global store keyed by a stable hash of the
//! process, cell, stage, switching slot, output direction and side values
//! (see [`arc_key`]), so characterization is paid once per process however
//! many analyzers are built. The store is *read-only at solve time*: a
//! missing model is a fallback, never an inline characterization, keeping
//! batch, threaded, incremental and served analyses bit-identical to each
//! other.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use xtalk_tech::cell::{Stage, StageSignal};
use xtalk_tech::{DeviceType, Library, Process};

use crate::pwl::Waveform;
use crate::sensitize;
use crate::signature::{canon_bits, StableHasher};
use crate::stage::{Coupling, CouplingMode, Load, StageScratch, StageSolver};

/// Input-slew grid (10–90% transition time, seconds).
pub const GRID_SLEWS: [f64; 8] = [
    20e-12, 40e-12, 80e-12, 160e-12, 320e-12, 640e-12, 1200e-12, 2000e-12,
];

/// Total effective load grid (`Load::total_cap()`, farads).
pub const GRID_LOADS: [f64; 8] = [
    1.5e-15, 3e-15, 7e-15, 15e-15, 35e-15, 80e-15, 180e-15, 400e-15,
];

/// Active-coupling ratio grid (`c_active / ctot`) for the coupled slices.
/// Quiet solves use a dedicated `r = 0` slice; ratios below the first grid
/// point fall back to Newton rather than interpolating across the snap
/// discontinuity at `r = 0`.
pub const GRID_RATIOS: [f64; 5] = [0.03, 0.1, 0.2, 0.32, 0.5];

/// Admission tolerance on the certified delay bound, seconds.
pub const TOL_DELAY: f64 = 40.0e-12;
/// Admission tolerance on the certified output-slew bound, seconds.
pub const TOL_SLEW: f64 = 90.0e-12;
/// Admission tolerance on the auxiliary (threshold-band entry, quiescent
/// time) bounds, seconds. These only shift coupling-overlap decisions — in
/// the conservative direction — so they tolerate more than the delay pad.
pub const TOL_AUX: f64 = 180.0e-12;

/// Safety margin multiplied onto the worst measured optimistic residual.
const PAD_MARGIN: f64 = 1.25;
/// Absolute floor added to every pad, seconds.
const PAD_FLOOR: f64 = 0.1e-12;
/// Table format / grid revision, part of every arc key.
const GRID_VERSION: u64 = 4;
/// Minimum time separation between synthesized waveform points.
const EPS_T: f64 = 1e-13;

const NS: usize = GRID_SLEWS.len();
const NL: usize = GRID_LOADS.len();
const NR: usize = GRID_RATIOS.len();

/// The two input/output waveform classes the solver produces.
///
/// A quiet solve swings rail to rail; a solve with an active coupling is
/// restarted at the coupling threshold (`Vth` rising, `Vdd − Vth` falling)
/// after the last snap, so its waveform begins *at* the threshold-band
/// boundary. Waveforms starting anywhere else are unclassifiable and fall
/// back to Newton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputShape {
    /// Full rail-to-rail swing.
    Full,
    /// Snapped partial swing restarting at the coupling threshold.
    Snapped,
}

/// Voltage ladder of one characterization, precomputed from the process.
#[derive(Debug, Clone, Copy)]
struct Volts {
    vdd: f64,
    vth: f64,
    th: f64,
    slo: f64,
    shi: f64,
}

impl Volts {
    /// The ladder must be strictly ordered for the synthesized waveform
    /// point sequences to be monotone: `0 < vth < slo < th < shi <
    /// vdd − vth < vdd`.
    fn of(process: &Process) -> Option<Volts> {
        let vdd = process.vdd;
        let vth = process.coupling_vth;
        let th = process.delay_threshold();
        let (slo, shi) = process.slew_thresholds();
        let ordered = 0.0 < vth && vth < slo && slo < th && th < shi && shi < vdd - vth;
        ordered.then_some(Volts {
            vdd,
            vth,
            th,
            slo,
            shi,
        })
    }
}

/// The four tabulated response features of one solve.
#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    /// Delay-threshold crossing minus the input's crossing.
    delay: f64,
    /// 10–90% output transition time.
    slew: f64,
    /// Coupling-band entry minus the output's threshold crossing (≤ 0).
    aoff: f64,
    /// Quiescent crossing minus the output's threshold crossing (≥ 0).
    qoff: f64,
}

/// One shape's tables over `[ratio][slew][load]` (`nr == 1` for the quiet
/// slice).
#[derive(Debug, Clone, Default)]
struct SliceTables {
    delay: Vec<f64>,
    slew: Vec<f64>,
    aoff: Vec<f64>,
    qoff: Vec<f64>,
}

/// A characterized timing arc: interpolation tables plus certified pads.
#[derive(Debug, Clone, Default)]
pub struct ArcModel {
    usable: bool,
    vdd: f64,
    vth: f64,
    th: f64,
    slo: f64,
    shi: f64,
    /// Quiet (`r = 0`) tables, indexed by input shape.
    quiet: [SliceTables; 2],
    /// Active-coupling tables over [`GRID_RATIOS`], indexed by input shape.
    active: [SliceTables; 2],
    pad_delay: f64,
    pad_slew: f64,
    pad_aoff: f64,
    pad_qoff: f64,
    cert_delay: f64,
    cert_slew: f64,
}

/// Result of characterizing and certifying one arc, for telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Models in the process-global store.
    pub models: usize,
    /// Models that passed bounded-error admission.
    pub usable: usize,
    /// Lifetime table hits recorded via [`note_hit`].
    pub table_hits: usize,
    /// Lifetime in-model fallbacks recorded via [`note_fallback`].
    pub table_fallbacks: usize,
}

impl ArcModel {
    /// Whether the arc passed bounded-error admission.
    pub fn usable(&self) -> bool {
        self.usable
    }

    /// The certified delay bound: on the validation sample, reported table
    /// delays are never earlier than the transistor solve's and exceed it
    /// by at most this value.
    pub fn certified_delay_bound(&self) -> f64 {
        self.cert_delay
    }

    /// The certified output-slew bound (never narrower, wider by at most
    /// this value).
    pub fn certified_slew_bound(&self) -> f64 {
        self.cert_slew
    }

    /// Answers a stage solve by table lookup, or `None` when the query
    /// must fall back to the transistor solver. A `Some` waveform is
    /// conservatively padded: its delay-threshold crossing is never
    /// earlier than the true solve's (within the certified bound), its
    /// slew never narrower, its quiescent time never earlier and its
    /// coupling-band entry never later.
    pub fn lookup(&self, in_wave: &Waveform, load: &Load, out_rising: bool) -> Option<Waveform> {
        if !self.usable {
            return None;
        }
        // The solver inverts: the input must run opposite to the output.
        if in_wave.is_rising() == out_rising {
            return None;
        }
        let shape = self.classify(in_wave, !out_rising)?;
        let slew_in = in_wave.slew(self.slo, self.shi)?;
        let t_in = in_wave.crossing(self.th)?;
        let (ctot, ratio) = fold_load(load)?;
        let (si, fs) = axis(&GRID_SLEWS, slew_in)?;
        let (li, fl) = axis(&GRID_LOADS, ctot)?;
        let sh = shape as usize;
        let sample = match ratio {
            None => {
                let t = &self.quiet[sh];
                Sample {
                    delay: bilerp(&t.delay, 0, si, fs, li, fl),
                    slew: bilerp(&t.slew, 0, si, fs, li, fl),
                    aoff: bilerp(&t.aoff, 0, si, fs, li, fl),
                    qoff: bilerp(&t.qoff, 0, si, fs, li, fl),
                }
            }
            Some(r) => {
                // Ratios below the grid floor (tiny aggressors, or a small
                // active subset of a larger family) are clamped up: the
                // true delay grows with the ratio, so sampling at the
                // floor errs late. `fold_load` capped the family's total
                // ratio, so only the low side can clamp.
                let clamped = r < GRID_RATIOS[0];
                let (ri, fr) = axis(&GRID_RATIOS, r.max(GRID_RATIOS[0]))?;
                let t = &self.active[sh];
                let mut s = Sample {
                    delay: trilerp(&t.delay, ri, fr, si, fs, li, fl),
                    slew: trilerp(&t.slew, ri, fr, si, fs, li, fl),
                    aoff: trilerp(&t.aoff, ri, fr, si, fs, li, fl),
                    qoff: trilerp(&t.qoff, ri, fr, si, fs, li, fl),
                };
                if clamped {
                    // A clamped query's truth sits between the quiet slice
                    // (its `r -> 0` limit) and the floor slice. Slew and
                    // quiescent offset *shrink* with the ratio (the snap
                    // restart discards the early tail), so the floor
                    // sample under-reports them for a tiny-`r` query; the
                    // band entry grows. Merge in the quiet slice on the
                    // conservative side of each: wider slew, later quiet,
                    // earlier band entry. Delay needs no merge — the floor
                    // sample already bounds the smaller-`r` truth.
                    let q = &self.quiet[sh];
                    s.slew = s.slew.max(bilerp(&q.slew, 0, si, fs, li, fl));
                    s.qoff = s.qoff.max(bilerp(&q.qoff, 0, si, fs, li, fl));
                    s.aoff = s.aoff.min(bilerp(&q.aoff, 0, si, fs, li, fl));
                }
                s
            }
        };
        let padded = Sample {
            delay: sample.delay + self.pad_delay,
            slew: sample.slew + self.pad_slew,
            aoff: sample.aoff - self.pad_aoff,
            qoff: sample.qoff + self.pad_qoff,
        };
        let out_shape = if ratio.is_some() {
            InputShape::Snapped
        } else {
            InputShape::Full
        };
        self.synthesize(out_rising, out_shape, t_in + padded.delay, &padded)
    }

    /// Classifies a waveform by its initial value against the coupling
    /// threshold band of its direction.
    fn classify(&self, wave: &Waveform, rising: bool) -> Option<InputShape> {
        let v0 = wave.initial_value();
        let band = 0.5 * self.vth;
        let (full_rail, snap_v) = if rising {
            (0.0, self.vth)
        } else {
            (self.vdd, self.vdd - self.vth)
        };
        if (v0 - full_rail).abs() <= band {
            Some(InputShape::Full)
        } else if (v0 - snap_v).abs() <= band {
            Some(InputShape::Snapped)
        } else {
            None
        }
    }

    /// Builds the conservative output waveform: a piecewise-linear wave
    /// whose delay-threshold crossing is `t_cross`, whose 10–90% slew is
    /// `s.slew`, whose coupling-band entry is `t_cross + s.aoff` and whose
    /// quiescent crossing is `t_cross + s.qoff`.
    fn synthesize(
        &self,
        out_rising: bool,
        shape: InputShape,
        t_cross: f64,
        s: &Sample,
    ) -> Option<Waveform> {
        let (vdd, vth, th, slo, shi) = (self.vdd, self.vth, self.th, self.slo, self.shi);
        let span = shi - slo;
        if s.slew <= 0.0 || !s.slew.is_finite() || span <= 0.0 {
            return None;
        }
        // Main-line time of a voltage on the rising transition.
        let line = |v: f64| t_cross + s.slew * (v - th) / span;
        let (t_lo, t_hi) = (line(slo), line(shi));
        if out_rising {
            let t_band = (t_cross + s.aoff).min(t_lo - EPS_T);
            let quiet_v = vdd - vth;
            let t_q = (t_cross + s.qoff).max(t_hi + EPS_T);
            let t_end = t_hi + (t_q - t_hi) * (vdd - shi) / (quiet_v - shi);
            let mut pts = Vec::with_capacity(5);
            if shape == InputShape::Full {
                pts.push((t_band - s.slew * vth / span, 0.0));
            }
            pts.extend([(t_band, vth), (t_lo, slo), (t_hi, shi), (t_end, vdd)]);
            Waveform::new(pts).ok()
        } else {
            // Falling: mirror of the rising ladder. The band entry is the
            // `vdd − vth` crossing (early), the quiescent is `vth` (late).
            let fline = |v: f64| t_cross + s.slew * (th - v) / span;
            let (t_fhi, t_flo) = (fline(shi), fline(slo));
            let t_band = (t_cross + s.aoff).min(t_fhi - EPS_T);
            let t_q = (t_cross + s.qoff).max(t_flo + EPS_T);
            let t_end = t_flo + (t_q - t_flo) * slo / (slo - vth);
            let mut pts = Vec::with_capacity(5);
            if shape == InputShape::Full {
                pts.push((t_band - s.slew * vth / span, vdd));
            }
            pts.extend([
                (t_band, vdd - vth),
                (t_fhi, shi),
                (t_flo, slo),
                (t_end, 0.0),
            ]);
            Waveform::new(pts).ok()
        }
    }
}

/// Folds a runtime load into the table coordinates `(ctot, r)`: `None`
/// ratio for a quiet solve, `Some(sum of active caps / ctot)` for a load
/// with active aggressors. Returns `None` (fall back to Newton) when the
/// load is not tabulated.
///
/// The admission predicate is deliberately a function of the load's
/// *structure* (ground cap plus coupling caps), never of the coupling-mode
/// labels a policy attached — the **family rule**. The five analysis modes
/// differ exactly in those labels, and the paper's cross-mode orderings
/// (best <= doubled, best <= one-step <= worst) only survive the table's
/// certified pessimistic padding when every mode routes a given arc
/// through the *same* engine: a padded table answer in one mode next to an
/// exact Newton answer in another can invert an ordering by up to the pad.
/// The structural conditions therefore quantify over every labeling a
/// mode can attach: `cground + sum(c)` (any all-grounded labeling) must
/// sit on the load grid, the doubled treatment `cground + 2*sum(c)` must
/// too, and the all-active ratio `sum(c) / base` — the largest any subset
/// can reach — must not exceed the top of the ratio grid.
///
/// **Multi-aggressor lumping.** A labeling with several active couplings
/// is answered as one equivalent aggressor of capacitance `sum of active
/// caps`. In the paper's three-phase model each active coupling fires one
/// snap when the victim ratchets up to its trigger `Vth + Vdd*c_i/Ctot`,
/// resetting the output to `Vth`; the total ratchet distance climbed is
/// `Vdd * sum(c_i) / Ctot` — exactly the single climb of the lumped
/// aggressor's one snap. The lumped restart happens no earlier than the
/// true last snap (its trigger dominates every individual one), and the
/// victim's drive strengthens over the snap window, so serving the climb
/// early (lumped) is slower than serving it late (staggered): the lumped
/// answer errs pessimistic. Ratios below the grid floor are clamped up in
/// [`ArcModel::lookup`] with a quiet-slice guard rather than rejected, so
/// admission needs no per-coupling floor.
fn fold_load(load: &Load) -> Option<(f64, Option<f64>)> {
    let ctot = load.total_cap();
    if !ctot.is_finite() || ctot <= 0.0 {
        return None;
    }
    let mut csum = 0.0;
    let mut active = 0.0;
    for c in &load.couplings {
        if c.mode == CouplingMode::Assisting || !c.c.is_finite() || c.c < 0.0 {
            return None;
        }
        csum += c.c;
        if c.mode == CouplingMode::Active {
            active += c.c;
        }
    }
    if csum == 0.0 {
        // Pure grounded load: identical query under every mode.
        return Some((ctot, None));
    }
    let base = load.cground + csum;
    let doubled = load.cground + 2.0 * csum;
    if base < GRID_LOADS[0] || doubled > GRID_LOADS[NL - 1] {
        return None;
    }
    if csum / base.max(1e-18) > GRID_RATIOS[NR - 1] {
        return None;
    }
    if active <= 0.0 {
        return Some((ctot, None));
    }
    Some((base, Some(active / base.max(1e-18))))
}

/// Locates `x` on a grid axis: the lower cell index and the interpolation
/// fraction, or `None` outside the (closed) grid span.
fn axis(grid: &[f64], x: f64) -> Option<(usize, f64)> {
    let n = grid.len();
    if !x.is_finite() || x < grid[0] || x > grid[n - 1] {
        return None;
    }
    let mut i = 0;
    while i + 2 < n && x >= grid[i + 1] {
        i += 1;
    }
    let w = grid[i + 1] - grid[i];
    Some((i, ((x - grid[i]) / w).clamp(0.0, 1.0)))
}

fn bilerp(vals: &[f64], ri: usize, si: usize, fs: f64, li: usize, fl: f64) -> f64 {
    let at = |s: usize, l: usize| vals[(ri * NS + s) * NL + l];
    let lo = at(si, li) * (1.0 - fl) + at(si, li + 1) * fl;
    let hi = at(si + 1, li) * (1.0 - fl) + at(si + 1, li + 1) * fl;
    lo * (1.0 - fs) + hi * fs
}

fn trilerp(vals: &[f64], ri: usize, fr: f64, si: usize, fs: f64, li: usize, fl: f64) -> f64 {
    let lo = bilerp(vals, ri, si, fs, li, fl);
    let hi = bilerp(vals, ri + 1, si, fs, li, fl);
    lo * (1.0 - fr) + hi * fr
}

/// Builds the characterization input for one grid point: a linear ramp of
/// the given 10–90% slew crossing the delay threshold at `t_cross`, either
/// rail-to-rail or restarted at the coupling threshold.
fn ramp_input(
    v: &Volts,
    rising: bool,
    shape: InputShape,
    slew: f64,
    t_cross: f64,
) -> Option<Waveform> {
    let span = v.shi - v.slo;
    let (swing, from, to) = match (shape, rising) {
        (InputShape::Full, true) => (v.vdd, 0.0, v.vdd),
        (InputShape::Full, false) => (v.vdd, v.vdd, 0.0),
        (InputShape::Snapped, true) => (v.vdd - v.vth, v.vth, v.vdd),
        (InputShape::Snapped, false) => (v.vdd - v.vth, v.vdd - v.vth, 0.0),
    };
    let dur = slew * swing / span;
    let frac = if rising {
        (v.th - from) / (to - from)
    } else {
        (from - v.th) / (from - to)
    };
    Waveform::ramp(t_cross - dur * frac, dur, from, to).ok()
}

/// Measures the four tabulated features of a solved output waveform.
fn measure(v: &Volts, out_rising: bool, t_in_cross: f64, wave: &Waveform) -> Option<Sample> {
    let (band_v, quiet_v) = if out_rising {
        (v.vth, v.vdd - v.vth)
    } else {
        (v.vdd - v.vth, v.vth)
    };
    let t_out = wave.crossing(v.th)?;
    Some(Sample {
        delay: t_out - t_in_cross,
        slew: wave.slew(v.slo, v.shi)?,
        aoff: wave.crossing(band_v)? - t_out,
        qoff: wave.crossing(quiet_v)? - t_out,
    })
}

/// The characterization load of a grid point: `(L, r)` realised exactly as
/// the integrator folds runtime loads.
fn grid_load(l: f64, ratio: Option<f64>) -> Load {
    match ratio {
        None => Load::grounded(l),
        Some(r) => Load {
            cground: l * (1.0 - r),
            couplings: vec![Coupling::new(l * r, CouplingMode::Active)],
        },
    }
}

/// Clamps a `[ratio][slew][load]` table to be monotone non-decreasing
/// (running max) along the load axis, and optionally along the ratio
/// axis. Raising values is conservative for max-delay analysis, and
/// load-monotone tables preserve the paper's mode orderings between
/// in-grid queries that differ only in how much capacitance is switching.
/// The other axes are *not* clamped: a bigger snap genuinely shortens the
/// measured output slew and quiescent offset (the wave restarts at the
/// coupling threshold), and a slower input at a light load crosses the
/// delay threshold *before* its driver does (negative, decreasing delay),
/// so a running max along those axes would pin entries far above the
/// truth and wreck the certified bounds.
fn cummax(vals: &mut [f64], nr: usize, along_ratio: bool) {
    let idx = |r: usize, s: usize, l: usize| (r * NS + s) * NL + l;
    for r in 0..nr {
        for s in 0..NS {
            for l in 1..NL {
                vals[idx(r, s, l)] = vals[idx(r, s, l)].max(vals[idx(r, s, l - 1)]);
            }
        }
    }
    if along_ratio {
        for r in 1..nr {
            for s in 0..NS {
                for l in 0..NL {
                    vals[idx(r, s, l)] = vals[idx(r, s, l)].max(vals[idx(r - 1, s, l)]);
                }
            }
        }
    }
}

/// Characterizes one timing arc against the transistor solver and
/// certifies its interpolation error on a validation grid. Returns an
/// unusable model (every lookup falls back) when the arc does not sweep
/// cleanly or its certified pads exceed the admission tolerances.
pub fn characterize_arc(
    process: &Process,
    stage: &Stage,
    slot: usize,
    side: &[f64],
    out_rising: bool,
) -> ArcModel {
    let Some(v) = Volts::of(process) else {
        return ArcModel::default();
    };
    let solver = StageSolver::new(process);
    let mut scratch = StageScratch::new();
    let in_rising = !out_rising;

    let solve_at =
        |scratch: &mut StageScratch, shape: InputShape, slew: f64, l: f64, ratio: Option<f64>| {
            let t_cross = 4.0 * slew + 1e-9;
            let input = ramp_input(&v, in_rising, shape, slew, t_cross)?;
            let load = grid_load(l, ratio);
            let out = solver
                .solve_with(scratch, stage, slot, &input, side, &load)
                .ok()?;
            measure(&v, out_rising, t_cross, &out.wave).map(|s| (s, out.wave))
        };

    let shapes = [InputShape::Full, InputShape::Snapped];
    let mut quiet: [SliceTables; 2] = Default::default();
    let mut active: [SliceTables; 2] = Default::default();
    for (sh, &shape) in shapes.iter().enumerate() {
        let scratch = &mut scratch;
        let mut fill =
            |nr: usize, ratio_of: &dyn Fn(usize) -> Option<f64>| -> Option<SliceTables> {
                let n = nr * NS * NL;
                let mut t = SliceTables {
                    delay: vec![0.0; n],
                    slew: vec![0.0; n],
                    aoff: vec![0.0; n],
                    qoff: vec![0.0; n],
                };
                for r in 0..nr {
                    for (s, &slew) in GRID_SLEWS.iter().enumerate() {
                        for (l, &load) in GRID_LOADS.iter().enumerate() {
                            let (sample, _) = solve_at(scratch, shape, slew, load, ratio_of(r))?;
                            let i = (r * NS + s) * NL + l;
                            t.delay[i] = sample.delay;
                            t.slew[i] = sample.slew;
                            t.aoff[i] = sample.aoff;
                            t.qoff[i] = sample.qoff;
                        }
                    }
                }
                cummax(&mut t.delay, nr, true);
                cummax(&mut t.slew, nr, false);
                cummax(&mut t.qoff, nr, false);
                Some(t)
            };
        let Some(q) = fill(1, &|_| None) else {
            return ArcModel::default();
        };
        let Some(mut a) = fill(NR, &|r| Some(GRID_RATIOS[r])) else {
            return ArcModel::default();
        };
        // An opposing active aggressor never speeds the victim relative to
        // the same capacitance grounded, so clamp the active delay table to
        // the quiet baseline: cross-mode orderings (best-case <= one-step
        // <= worst-case) then survive interpolation noise at small ratios.
        for s in 0..NS {
            for l in 0..NL {
                let floor = q.delay[s * NL + l];
                for r in 0..NR {
                    let i = (r * NS + s) * NL + l;
                    if a.delay[i] < floor {
                        a.delay[i] = floor;
                    }
                }
            }
        }
        quiet[sh] = q;
        active[sh] = a;
    }

    let mut model = ArcModel {
        usable: true,
        vdd: v.vdd,
        vth: v.vth,
        th: v.th,
        slo: v.slo,
        shi: v.shi,
        quiet,
        active,
        pad_delay: 0.0,
        pad_slew: 0.0,
        pad_aoff: 0.0,
        pad_qoff: 0.0,
        cert_delay: 0.0,
        cert_slew: 0.0,
    };

    // Validation: interpolate the (clamped, unpadded) tables at off-grid
    // probes and measure the residual against a fresh transistor solve.
    let mids =
        |grid: &[f64]| -> Vec<f64> { grid.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect() };
    let mid_s = mids(&GRID_SLEWS);
    let mid_l = mids(&GRID_LOADS);
    let mid_r = mids(&GRID_RATIOS);
    let mut probes: Vec<(InputShape, f64, f64, Option<f64>)> = Vec::new();
    for &shape in &shapes {
        for (i, &s) in mid_s.iter().enumerate() {
            for (j, &l) in mid_l.iter().enumerate() {
                probes.push((shape, s, l, None));
                let r = mid_r[(i + j) % mid_r.len()];
                probes.push((shape, s, l, Some(r)));
            }
        }
    }

    // Signed residual envelope: `lo.x` is the worst `truth − interp`
    // (table too early/narrow), `hi.x` the worst `interp − truth`.
    let mut err_lo = Sample::default();
    let mut err_hi = Sample::default();
    let mut checked = 0usize;
    let mut check = |scratch: &mut StageScratch,
                     model: &ArcModel,
                     err_lo: &mut Sample,
                     err_hi: &mut Sample,
                     input: &Waveform,
                     l: f64,
                     ratio: Option<f64>|
     -> Option<()> {
        let shape = model.classify(input, in_rising)?;
        let slew_in = input.slew(v.slo, v.shi)?;
        let t_in = input.crossing(v.th)?;
        let (si, fs) = axis(&GRID_SLEWS, slew_in)?;
        let (li, fl) = axis(&GRID_LOADS, l)?;
        let sh = shape as usize;
        let interp = match ratio {
            None => {
                let t = &model.quiet[sh];
                Sample {
                    delay: bilerp(&t.delay, 0, si, fs, li, fl),
                    slew: bilerp(&t.slew, 0, si, fs, li, fl),
                    aoff: bilerp(&t.aoff, 0, si, fs, li, fl),
                    qoff: bilerp(&t.qoff, 0, si, fs, li, fl),
                }
            }
            Some(r) => {
                let (ri, fr) = axis(&GRID_RATIOS, r)?;
                let t = &model.active[sh];
                Sample {
                    delay: trilerp(&t.delay, ri, fr, si, fs, li, fl),
                    slew: trilerp(&t.slew, ri, fr, si, fs, li, fl),
                    aoff: trilerp(&t.aoff, ri, fr, si, fs, li, fl),
                    qoff: trilerp(&t.qoff, ri, fr, si, fs, li, fl),
                }
            }
        };
        let load = grid_load(l, ratio);
        let out = solver
            .solve_with(scratch, stage, slot, input, side, &load)
            .ok()?;
        let truth = measure(&v, out_rising, t_in, &out.wave)?;
        err_lo.delay = err_lo.delay.max(truth.delay - interp.delay);
        err_lo.slew = err_lo.slew.max(truth.slew - interp.slew);
        err_lo.aoff = err_lo.aoff.max(truth.aoff - interp.aoff);
        err_lo.qoff = err_lo.qoff.max(truth.qoff - interp.qoff);
        err_hi.delay = err_hi.delay.max(interp.delay - truth.delay);
        err_hi.slew = err_hi.slew.max(interp.slew - truth.slew);
        err_hi.aoff = err_hi.aoff.max(interp.aoff - truth.aoff);
        err_hi.qoff = err_hi.qoff.max(interp.qoff - truth.qoff);
        checked += 1;
        Some(())
    };

    for &(shape, s, l, ratio) in &probes {
        let t_cross = 4.0 * s + 1e-9;
        if let Some(input) = ramp_input(&v, in_rising, shape, s, t_cross) {
            let _ = check(
                &mut scratch,
                &model,
                &mut err_lo,
                &mut err_hi,
                &input,
                l,
                ratio,
            );
        }
    }
    // Realistic-shape probes: the arc's own solver outputs, mirrored into
    // the input direction, raw and wire-stretched — these fold the
    // ramp-vs-solver shape substitution error into the certified pads.
    for &(s, l) in &[
        (GRID_SLEWS[2], GRID_LOADS[2]),
        (GRID_SLEWS[3], GRID_LOADS[4]),
    ] {
        for ratio in [None, Some(GRID_RATIOS[1])] {
            let Some((_, wave)) = solve_at(&mut scratch, InputShape::Full, s, l, ratio) else {
                continue;
            };
            let as_input = mirror(&wave, v.vdd);
            for factor in [1.0, 1.3] {
                let probe = as_input.stretched_around(v.th, factor);
                for &(lp, rp) in &[(mid_l[1], None), (mid_l[3], Some(mid_r[1]))] {
                    let _ = check(
                        &mut scratch,
                        &model,
                        &mut err_lo,
                        &mut err_hi,
                        &probe,
                        lp,
                        rp,
                    );
                }
            }
        }
    }

    if checked == 0 {
        return ArcModel::default();
    }
    // Pads cover the optimistic side (so padded answers are never early /
    // narrow); the certified bound adds the worst pessimistic residual on
    // top — the total distance a padded answer can sit above the truth.
    // For `aoff` the conservative direction is *earlier* band entry, so
    // its pad covers the `hi` side and its excess the `lo` side.
    model.pad_delay = PAD_MARGIN * err_lo.delay + PAD_FLOOR;
    model.pad_slew = PAD_MARGIN * err_lo.slew + PAD_FLOOR;
    model.pad_aoff = PAD_MARGIN * err_hi.aoff + PAD_FLOOR;
    model.pad_qoff = PAD_MARGIN * err_lo.qoff + PAD_FLOOR;
    model.cert_delay = model.pad_delay + PAD_MARGIN * err_hi.delay + PAD_FLOOR;
    model.cert_slew = model.pad_slew + PAD_MARGIN * err_hi.slew + PAD_FLOOR;
    let cert_aoff = model.pad_aoff + PAD_MARGIN * err_lo.aoff + PAD_FLOOR;
    let cert_qoff = model.pad_qoff + PAD_MARGIN * err_hi.qoff + PAD_FLOOR;
    model.usable = model.cert_delay <= TOL_DELAY
        && model.cert_slew <= TOL_SLEW
        && cert_aoff <= TOL_AUX
        && cert_qoff <= TOL_AUX;
    model
}

/// Voltage mirror `(t, v) → (t, vdd − v)`: flips a waveform's direction
/// while preserving linearity and timing, exactly as the kernel mirrors
/// launch clock edges.
fn mirror(wave: &Waveform, vdd: f64) -> Waveform {
    let pts: Vec<(f64, f64)> = wave.points().iter().map(|&(t, v)| (t, vdd - v)).collect();
    Waveform::new(pts).unwrap_or_else(|_| wave.clone())
}

/// A stable token of the process's electrical identity, folded into every
/// arc key so models never cross processes. Covers the voltage ladder,
/// default slew and the analytical device parameters (the sampled device
/// tables derive from them).
fn process_token(process: &Process) -> u64 {
    let mut h = StableHasher::new();
    for x in [
        process.vdd,
        process.coupling_vth,
        process.delay_threshold(),
        process.slew_thresholds().0,
        process.slew_thresholds().1,
        process.default_input_slew,
    ] {
        h.write_u64(canon_bits(x));
    }
    for dev in [DeviceType::Nmos, DeviceType::Pmos] {
        h.write_bytes(format!("{:?}", process.params(dev)).as_bytes());
    }
    h.finish()
}

/// The process-global store key of one timing arc's model.
///
/// Keyed on the process token, cell name, stage index, switching slot,
/// output direction and exact side values — everything the solve depends
/// on besides the per-query input waveform and load. Cell names are
/// assumed to identify one transistor topology per process (true of the
/// built-in library); [`clear_store`] resets the store if a test rebinds a
/// name.
pub fn arc_key(
    process: &Process,
    cell_name: &str,
    stage_in_cell: usize,
    slot: usize,
    out_rising: bool,
    side: &[f64],
) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(GRID_VERSION);
    h.write_u64(process_token(process));
    h.write_bytes(cell_name.as_bytes());
    h.write_u64(stage_in_cell as u64);
    h.write_u64(slot as u64);
    h.write_u64(out_rising as u64);
    h.write_u64(side.len() as u64);
    for &x in side {
        h.write_u64(canon_bits(x));
    }
    h.finish()
}

type Store = RwLock<HashMap<u64, Arc<ArcModel>>>;

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| RwLock::new(HashMap::new()))
}

static TABLE_HITS: AtomicUsize = AtomicUsize::new(0);
static TABLE_FALLBACKS: AtomicUsize = AtomicUsize::new(0);

/// Fetches a model from the process-global store. Solve-time misses are
/// fallbacks, never inline characterizations.
pub fn model_for(key: u64) -> Option<Arc<ArcModel>> {
    let guard = store().read().unwrap_or_else(|e| e.into_inner());
    guard.get(&key).cloned()
}

/// Characterizes and inserts the arc's model unless the store already
/// holds it, returning the stored model either way.
pub fn ensure_model(
    key: u64,
    process: &Process,
    stage: &Stage,
    slot: usize,
    side: &[f64],
    out_rising: bool,
) -> Arc<ArcModel> {
    if let Some(m) = model_for(key) {
        return m;
    }
    let model = Arc::new(characterize_arc(process, stage, slot, side, out_rising));
    let mut guard = store().write().unwrap_or_else(|e| e.into_inner());
    guard.entry(key).or_insert(model).clone()
}

/// Records one answered table lookup (process-lifetime counter).
pub fn note_hit() {
    TABLE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records one fallback from an available model to the Newton solver
/// (out-of-grid query, unclassifiable shape, multi-active load...).
pub fn note_fallback() {
    TABLE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Process-lifetime store statistics, for the CLI and the serve daemon.
pub fn stats() -> StoreStats {
    let guard = store().read().unwrap_or_else(|e| e.into_inner());
    StoreStats {
        models: guard.len(),
        usable: guard.values().filter(|m| m.usable).count(),
        table_hits: TABLE_HITS.load(Ordering::Relaxed),
        table_fallbacks: TABLE_FALLBACKS.load(Ordering::Relaxed),
    }
}

/// Empties the store (test hygiene for custom libraries that rebind cell
/// names). Lifetime hit counters keep accumulating.
pub fn clear_store() {
    let mut guard = store().write().unwrap_or_else(|e| e.into_inner());
    guard.clear();
}

/// One prewarm work item: a combinational timing arc of a library cell.
type PrewarmArc<'l> = (u64, &'l Stage, usize, Vec<f64>, bool);

/// Characterizes every combinational timing arc of `library` into the
/// process-global store, using up to `threads` worker threads. Called at
/// analyzer build time (never from the solve path) so incremental edits
/// that instantiate new cells of the same library still find their models
/// — keeping ECO results bit-identical to a fresh batch run. Sequential
/// cells are skipped: launch arcs always use the full solver.
pub fn prewarm_library(process: &Process, library: &Library, threads: usize) {
    let vdd = process.vdd;
    let mut work: Vec<PrewarmArc<'_>> = Vec::new();
    {
        let guard = store().read().unwrap_or_else(|e| e.into_inner());
        for cell in library.iter() {
            if cell.is_sequential() {
                continue;
            }
            for (si, stage) in cell.stages.iter().enumerate() {
                for slot in 0..stage.inputs.len() {
                    if matches!(stage.inputs[slot], StageSignal::Launch) {
                        continue;
                    }
                    for out_rising in [false, true] {
                        let Some(side) = sensitize::side_values(stage, slot, out_rising, vdd)
                        else {
                            continue;
                        };
                        let key = arc_key(process, &cell.name, si, slot, out_rising, &side);
                        if !guard.contains_key(&key) {
                            work.push((key, stage, slot, side, out_rising));
                        }
                    }
                }
            }
        }
    }
    if work.is_empty() {
        return;
    }
    let workers = threads.clamp(1, work.len());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((key, stage, slot, side, out_rising)) = work.get(i) else {
                    break;
                };
                let _ = ensure_model(*key, process, stage, *slot, side, *out_rising);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::Library;

    fn arc(cell: &str, slot: usize, out_rising: bool) -> (Process, ArcModel) {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let c = library.cell(cell).expect("cell");
        let stage = &c.stages[0];
        let side =
            sensitize::side_values(stage, slot, out_rising, process.vdd).expect("sensitizable");
        let model = characterize_arc(&process, stage, slot, &side, out_rising);
        (process, model)
    }

    /// Deterministic xorshift for in-grid query sampling.
    fn rng(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn basic_cells_admit_with_small_certified_bounds() {
        for (cell, slot) in [("INVX1", 0), ("NAND2X1", 1)] {
            for out_rising in [false, true] {
                let (_, model) = arc(cell, slot, out_rising);
                assert!(model.usable(), "{cell} slot {slot} rising {out_rising}");
                assert!(model.certified_delay_bound() <= TOL_DELAY);
                assert!(model.certified_slew_bound() <= TOL_SLEW);
            }
        }
    }

    #[test]
    fn random_in_grid_queries_match_newton_within_certified_bound() {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let c = library.cell("INVX1").expect("INVX1");
        let stage = &c.stages[0];
        let solver = StageSolver::new(&process);
        let v = Volts::of(&process).expect("ladder");
        let mut state = 0x9e3779b97f4a7c15u64;
        for out_rising in [false, true] {
            let side = sensitize::side_values(stage, 0, out_rising, process.vdd).expect("side");
            let model = characterize_arc(&process, stage, 0, &side, out_rising);
            assert!(model.usable());
            for i in 0..40 {
                let fs = rng(&mut state);
                let fl = rng(&mut state);
                let slew = GRID_SLEWS[0] + fs * (GRID_SLEWS[NS - 1] - GRID_SLEWS[0]);
                let ratio = if i % 3 == 0 {
                    let fr = rng(&mut state);
                    Some(GRID_RATIOS[0] + fr * (GRID_RATIOS[NR - 1] - GRID_RATIOS[0]))
                } else {
                    None
                };
                // Keep the family rule satisfied: the doubled-coupling
                // sibling `ctot * (1 + r)` must stay inside the load grid.
                let max_load = GRID_LOADS[NL - 1] / (1.0 + ratio.unwrap_or(0.0));
                let load = GRID_LOADS[0] + fl * (max_load - GRID_LOADS[0]);
                let shape = if i % 2 == 0 {
                    InputShape::Full
                } else {
                    InputShape::Snapped
                };
                let t_cross = 4.0 * slew + 1e-9;
                let input = ramp_input(&v, !out_rising, shape, slew, t_cross).expect("probe input");
                let l = grid_load(load, ratio);
                let table = model
                    .lookup(&input, &l, out_rising)
                    .expect("in-grid query admitted");
                let truth = solver
                    .solve(stage, 0, &input, &side, l)
                    .expect("newton truth");
                let t_table = table.crossing(v.th).expect("table crossing");
                let t_true = truth.wave.crossing(v.th).expect("true crossing");
                // Conservative: never earlier, and within the certified
                // bound of the transistor answer.
                assert!(
                    t_table >= t_true - 1e-15,
                    "optimistic table answer: {t_table} < {t_true}"
                );
                assert!(
                    t_table - t_true <= model.certified_delay_bound() + 1e-15,
                    "table residual {} above certified bound {}",
                    t_table - t_true,
                    model.certified_delay_bound()
                );
            }
        }
    }

    /// Multi-aggressor lumping and sub-floor ratio clamping: random loads
    /// with several active couplings (including caps whose individual
    /// ratios sit below the grid floor) must never beat the exact
    /// multi-snap transistor solve, and the pessimism must stay on the
    /// scale of the certified bound plus the clamp/lump slack (a fraction
    /// of the snap climb, itself a fraction of the output slew).
    #[test]
    fn lumped_multi_aggressor_queries_are_conservative() {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let c = library.cell("INVX1").expect("INVX1");
        let stage = &c.stages[0];
        let solver = StageSolver::new(&process);
        let v = Volts::of(&process).expect("ladder");
        let mut state = 0x00c0_ffee_d00d_1234_u64;
        for out_rising in [false, true] {
            let side = sensitize::side_values(stage, 0, out_rising, process.vdd).expect("side");
            let model = characterize_arc(&process, stage, 0, &side, out_rising);
            assert!(model.usable());
            for i in 0..30 {
                let slew = GRID_SLEWS[1] + rng(&mut state) * (GRID_SLEWS[5] - GRID_SLEWS[1]);
                let base = GRID_LOADS[1] + rng(&mut state) * (GRID_LOADS[5] - GRID_LOADS[1]);
                // 2-4 couplings summing to an in-grid total ratio; one in
                // three draws makes the caps tiny (sub-floor ratios).
                let n = 2 + i % 3;
                let r_tot = 0.05 + rng(&mut state) * 0.4;
                let scale = if i % 3 == 0 { 0.04 } else { 1.0 };
                let mut caps = vec![0.0; n];
                let mut sum = 0.0;
                for cap in &mut caps {
                    *cap = 0.2 + rng(&mut state);
                    sum += *cap;
                }
                for cap in &mut caps {
                    *cap *= scale * r_tot * base / sum;
                }
                let csum: f64 = caps.iter().sum();
                let load = Load {
                    cground: base - csum,
                    couplings: caps
                        .iter()
                        .map(|&cc| Coupling::new(cc, CouplingMode::Active))
                        .collect(),
                };
                let t_cross = 4.0 * slew + 1e-9;
                let input = ramp_input(&v, !out_rising, InputShape::Full, slew, t_cross)
                    .expect("probe input");
                let table = model
                    .lookup(&input, &load, out_rising)
                    .expect("lumped query admitted");
                let truth = solver
                    .solve(stage, 0, &input, &side, load)
                    .expect("newton truth");
                let t_table = table.crossing(v.th).expect("table crossing");
                let t_true = truth.wave.crossing(v.th).expect("true crossing");
                assert!(
                    t_table >= t_true - 1e-15,
                    "optimistic lumped answer: {t_table} < {t_true}"
                );
                // The lump/clamp slack: serving the whole snap climb at the
                // clamped ratio, bounded by the climb time for one grid
                // floor of ratio plus the certified interpolation bound.
                let out_slew = truth.wave.slew(v.slo, v.shi).unwrap_or(slew);
                let slack = model.certified_delay_bound() + 0.5 * GRID_RATIOS[0] * slew + out_slew;
                assert!(
                    t_table - t_true <= slack,
                    "lumped pessimism {} above slack {}",
                    t_table - t_true,
                    slack
                );
            }
        }
    }

    #[test]
    fn lookup_rejects_out_of_grid_and_untabulated_loads() {
        let (process, model) = arc("INVX1", 0, true);
        let v = Volts::of(&process).expect("ladder");
        let input = ramp_input(&v, false, InputShape::Full, GRID_SLEWS[2], 2e-9).expect("input");
        // In-grid baseline admits.
        assert!(model
            .lookup(&input, &Load::grounded(20e-15), true)
            .is_some());
        // Load beyond the grid falls back.
        assert!(model
            .lookup(&input, &Load::grounded(2.0 * GRID_LOADS[NL - 1]), true)
            .is_none());
        // Two active couplings lump into one equivalent aggressor.
        let two = Load {
            cground: 10e-15,
            couplings: vec![
                Coupling::new(2e-15, CouplingMode::Active),
                Coupling::new(3e-15, CouplingMode::Active),
            ],
        };
        assert!(model.lookup(&input, &two, true).is_some());
        // ...unless the family's total ratio exceeds the grid top.
        let heavy = Load {
            cground: 1e-15,
            couplings: vec![
                Coupling::new(4e-15, CouplingMode::Active),
                Coupling::new(4e-15, CouplingMode::Active),
            ],
        };
        assert!(model.lookup(&input, &heavy, true).is_none());
        // Assisting couplings fall back.
        let assist = Load {
            cground: 10e-15,
            couplings: vec![Coupling::new(2e-15, CouplingMode::Assisting)],
        };
        assert!(model.lookup(&input, &assist, true).is_none());
        // Wrong input direction falls back.
        let rising_in = ramp_input(&v, true, InputShape::Full, GRID_SLEWS[2], 2e-9).expect("input");
        assert!(model
            .lookup(&rising_in, &Load::grounded(20e-15), true)
            .is_none());
    }

    #[test]
    fn synthesized_wave_controls_all_four_features() {
        let (process, model) = arc("INVX1", 0, true);
        let v = Volts::of(&process).expect("ladder");
        let input = ramp_input(&v, false, InputShape::Full, 200e-12, 2e-9).expect("input");
        let load = Load {
            cground: 18e-15,
            couplings: vec![Coupling::new(4e-15, CouplingMode::Active)],
        };
        let wave = model.lookup(&input, &load, true).expect("admitted");
        // Snapped output class: restarts at the coupling threshold.
        assert!((wave.initial_value() - v.vth).abs() < 1e-9);
        assert!(wave.crossing(v.th).is_some());
        assert!(wave.slew(v.slo, v.shi).is_some());
        assert!(wave.crossing(v.vdd - v.vth).is_some());
        // Quiet output class: full swing from the rail.
        let quiet = model
            .lookup(&input, &Load::grounded(22e-15), true)
            .expect("admitted");
        assert!(quiet.initial_value().abs() < 1e-9);
    }

    #[test]
    fn store_roundtrip_and_stats() {
        let process = Process::c05um();
        let library = Library::c05um(&process);
        let c = library.cell("INVX1").expect("INVX1");
        let stage = &c.stages[0];
        let side = sensitize::side_values(stage, 0, true, process.vdd).expect("side");
        let key = arc_key(&process, "INVX1", 0, 0, true, &side);
        assert_eq!(key, arc_key(&process, "INVX1", 0, 0, true, &side));
        assert_ne!(key, arc_key(&process, "INVX1", 0, 0, false, &side));
        let model = ensure_model(key, &process, stage, 0, &side, true);
        assert!(model.usable());
        let again = model_for(key).expect("stored");
        assert!(Arc::ptr_eq(&model, &again));
        assert!(stats().models >= 1);
    }
}
