//! Side-input sensitization for multi-input stages.
//!
//! Static timing propagates one input transition at a time; the remaining
//! ("side") inputs must be set to constants that let the switching input
//! control the output. Among all sensitizing assignments, the worst case
//! for delay is the one that leaves the *fewest* parallel conduction paths
//! helping the transition — e.g. for a NAND2 rise arc the other input must
//! be high, so only one PMOS charges the output.

use xtalk_tech::cell::{Network, Stage};

/// Finds the delay-worst sensitizing side assignment for `switching` on
/// `stage`, returning per-slot gate voltages (the switching slot's entry is
/// a placeholder and ignored by the solver).
///
/// `output_rising` selects which transition's drive should be minimised.
/// Returns `None` when no assignment lets the switching input control the
/// output (a non-sensitizable arc — e.g. MUX data input vs. wrong select).
pub fn side_values(
    stage: &Stage,
    switching: usize,
    output_rising: bool,
    vdd: f64,
) -> Option<Vec<f64>> {
    side_values_with(stage, switching, output_rising, vdd, false)
}

/// Like [`side_values`], but when `fastest` is `true` the assignment with
/// the *most* parallel conduction paths is chosen instead — the earliest
/// possible transition, needed by min-delay (hold) analysis.
pub fn side_values_with(
    stage: &Stage,
    switching: usize,
    output_rising: bool,
    vdd: f64,
    fastest: bool,
) -> Option<Vec<f64>> {
    let n = stage.inputs.len();
    if switching >= n {
        return None;
    }
    if n == 1 {
        return Some(vec![0.0]);
    }
    let side_slots: Vec<usize> = (0..n).filter(|&s| s != switching).collect();
    let mut best: Option<(u32, Vec<f64>)> = None;

    for mask in 0..(1u32 << side_slots.len()) {
        let assign = |slot: usize| -> Option<bool> {
            side_slots
                .iter()
                .position(|&s| s == slot)
                .map(|k| mask & (1 << k) != 0)
        };
        // Output must flip when the switching input flips.
        let out_lo = stage.eval(|s| {
            if s == switching {
                Some(false)
            } else {
                assign(s)
            }
        });
        let out_hi = stage.eval(|s| {
            if s == switching {
                Some(true)
            } else {
                assign(s)
            }
        });
        let (Some(a), Some(b)) = (out_lo, out_hi) else {
            continue;
        };
        if a == b {
            continue;
        }
        // Final switching-input state for the requested output transition:
        // the stage is inverting, so a rising output means the switching
        // input ends low.
        let sw_final = !output_rising;
        let on = |slot: usize| -> Option<bool> {
            if slot == switching {
                Some(sw_final)
            } else {
                assign(slot)
            }
        };
        // Drive strength of the network performing the transition: the
        // pull-up for a rising output (its devices conduct on a LOW gate).
        let strength = if output_rising {
            conduction_strength(&stage.pullup, &|s| on(s).map(|v| !v))
        } else {
            conduction_strength(&stage.pulldown, &|s| on(s))
        };
        if strength == 0 {
            continue; // would not transition at all
        }
        let better = match &best {
            None => true,
            Some((s, _)) => {
                if fastest {
                    strength > *s
                } else {
                    strength < *s
                }
            }
        };
        if better {
            let values = (0..n)
                .map(|slot| {
                    if slot == switching {
                        0.0
                    } else if assign(slot) == Some(true) {
                        vdd
                    } else {
                        0.0
                    }
                })
                .collect();
            best = Some((strength, values));
        }
    }
    best.map(|(_, v)| v)
}

/// Count of conducting root-to-rail paths, bottlenecked through series
/// elements (min) and summed across parallel branches.
fn conduction_strength(net: &Network, on: &dyn Fn(usize) -> Option<bool>) -> u32 {
    match net {
        Network::Device { input, .. } => match on(*input) {
            Some(true) => 1,
            _ => 0,
        },
        Network::Series(v) => v
            .iter()
            .map(|c| conduction_strength(c, on))
            .min()
            .unwrap_or(0),
        Network::Parallel(v) => v.iter().map(|c| conduction_strength(c, on)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtalk_tech::{Library, Process};

    fn lib() -> Library {
        Library::c05um(&Process::c05um())
    }

    const VDD: f64 = 3.3;

    #[test]
    fn inverter_needs_no_sides() {
        let l = lib();
        let inv = l.cell("INVX1").expect("inv");
        let v = side_values(&inv.stages[0], 0, true, VDD).expect("sensitizable");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn nand_side_is_high() {
        let l = lib();
        let nand = l.cell("NAND2X1").expect("nand");
        for rising in [true, false] {
            let v = side_values(&nand.stages[0], 0, rising, VDD).expect("sensitizable");
            assert_eq!(v[1], VDD, "NAND side input must be non-controlling (1)");
        }
    }

    #[test]
    fn nor_side_is_low() {
        let l = lib();
        let nor = l.cell("NOR2X1").expect("nor");
        for rising in [true, false] {
            let v = side_values(&nor.stages[0], 1, rising, VDD).expect("sensitizable");
            assert_eq!(v[0], 0.0, "NOR side input must be non-controlling (0)");
        }
    }

    #[test]
    fn nand3_all_sides_high() {
        let l = lib();
        let nand = l.cell("NAND3X1").expect("nand3");
        let v = side_values(&nand.stages[0], 1, true, VDD).expect("sensitizable");
        assert_eq!(v[0], VDD);
        assert_eq!(v[2], VDD);
    }

    #[test]
    fn aoi21_c_input_sensitization() {
        // AOI21: Y = !((A&B) | C). For the C arc, A&B must be 0.
        let l = lib();
        let aoi = l.cell("AOI21X1").expect("aoi");
        let v = side_values(&aoi.stages[0], 2, false, VDD).expect("sensitizable");
        assert!(
            v[0] == 0.0 || v[1] == 0.0,
            "A&B must not mask the C transition: {v:?}"
        );
    }

    #[test]
    fn aoi21_a_input_requires_b_high_c_low() {
        let l = lib();
        let aoi = l.cell("AOI21X1").expect("aoi");
        let v = side_values(&aoi.stages[0], 0, true, VDD).expect("sensitizable");
        assert_eq!(v[1], VDD, "B must pass A");
        assert_eq!(v[2], 0.0, "C must not force the output low");
    }

    #[test]
    fn rise_assignment_minimises_pullup_help() {
        // For a NOR2 rise on input 0: both inputs end low, the pull-up is a
        // series pair — strength 1 regardless. For NAND2 rise on input 0:
        // side high keeps the second PMOS off, strength 1 (not 2).
        let l = lib();
        let nand = l.cell("NAND2X1").expect("nand");
        let v = side_values(&nand.stages[0], 0, true, VDD).expect("sensitizable");
        let on = |slot: usize| -> Option<bool> {
            Some(if slot == 0 {
                false
            } else {
                v[slot] > VDD / 2.0
            })
        };
        let strength = conduction_strength(&nand.stages[0].pullup, &|s| on(s).map(|b| !b));
        assert_eq!(strength, 1, "only the switching PMOS may conduct");
    }

    #[test]
    fn fastest_nor2_fall_turns_both_pulldowns_on() {
        // NOR2 falling output: switching input rises; with `fastest`, the
        // other input may also be high so both NMOS pull in parallel — but
        // then the arc is not sensitized (output already low). The chooser
        // must still return a *sensitizing* assignment; for NOR2 that is
        // unique, so fast == slow here.
        let l = lib();
        let nor = l.cell("NOR2X1").expect("nor");
        let slow = side_values(&nor.stages[0], 0, false, VDD).expect("slow");
        let fast = side_values_with(&nor.stages[0], 0, false, VDD, true).expect("fast");
        assert_eq!(slow, fast);
    }

    #[test]
    fn fastest_aoi_c_arc_prefers_extra_pulldown_help() {
        // AOI21 pull-down: (A series B) parallel C. For the C falling arc
        // the slow choice blocks the AB branch; the fast choice may enable
        // it only when still sensitizing — the stage output must still flip
        // with C. With A=B=1 the output is stuck low, so both choosers must
        // reject it; check both return sensitizing assignments.
        let l = lib();
        let aoi = l.cell("AOI21X1").expect("aoi");
        for fastest in [false, true] {
            let v = side_values_with(&aoi.stages[0], 2, false, VDD, fastest).expect("sensitizable");
            assert!(v[0] == 0.0 || v[1] == 0.0, "AB must not mask C: {v:?}");
        }
    }

    #[test]
    fn out_of_range_slot_is_none() {
        let l = lib();
        let inv = l.cell("INVX1").expect("inv");
        assert_eq!(side_values(&inv.stages[0], 5, true, VDD), None);
    }
}
