//! Characterize the cell library and emit a Liberty (`.lib`) snippet.
//!
//! Shows the transistor-level engine doing double duty as a cell
//! characterizer: every sensitizable arc of a few cells is swept over an
//! input-slew × output-load grid and written as NLDM tables that a
//! conventional gate-level flow could consume.
//!
//! ```text
//! cargo run --release --example characterize_library
//! ```

use xtalk::prelude::*;
use xtalk::wave::characterize::characterize_cell;
use xtalk::wave::liberty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = Process::c05um();
    let library = Library::c05um(&process);

    let slews = [0.05e-9, 0.2e-9, 0.6e-9];
    let loads = [5e-15, 25e-15, 100e-15];

    let mut tables = Vec::new();
    for name in ["INVX1", "INVX4", "NAND2X1", "NOR2X1", "XOR2X1", "DFFX1"] {
        let cell = library.cell(name).expect("library cell");
        let t = characterize_cell(&process, cell, &slews, &loads)?;
        println!("{name}: {} arcs characterized", t.arcs.len());
        if let Some(arc) = t.arcs.first() {
            println!(
                "  pin {} {}: delay {:.0}..{:.0} ps over the grid",
                cell.inputs[arc.pin],
                if arc.output_rising { "rise" } else { "fall" },
                arc.delay[0][0] * 1e12,
                arc.delay[slews.len() - 1][loads.len() - 1] * 1e12
            );
        }
        tables.push(t);
    }

    let lib = liberty::write(&process, &library, &tables);
    println!();
    println!("--- Liberty preview (first 40 lines) ---");
    for line in lib.lines().take(40) {
        println!("{line}");
    }
    println!("... ({} bytes total)", lib.len());
    Ok(())
}
