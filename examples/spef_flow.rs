//! Interchange-format flow: Verilog out, SPEF out, both back in, same
//! timing.
//!
//! Real sign-off flows pass the netlist and parasitics between tools as
//! structural Verilog and SPEF. This example round-trips a generated block
//! through both formats and shows the crosstalk analysis is unchanged.
//!
//! ```text
//! cargo run --release --example spef_flow
//! ```

use xtalk::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = Process::c05um();
    let library = Library::c05um(&process);

    // Original design + layout.
    let netlist = xtalk::netlist::generator::generate(&GeneratorConfig::small(404), &library)?;
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);

    // Export.
    let verilog = xtalk::netlist::verilog::write(&netlist, &library)?;
    let spef = xtalk::layout::spef::write(&netlist, &parasitics);
    println!(
        "exported {} bytes of Verilog, {} bytes of SPEF",
        verilog.len(),
        spef.len()
    );

    // Re-import.
    let netlist2 = xtalk::netlist::verilog::parse(&verilog, &library)?;
    let mut parasitics2 = xtalk::layout::spef::parse(&spef, &netlist2)?;
    // SPEF carries no per-sink Elmore resistances (tool-internal detail);
    // splice them over from the original extraction (matched by net name —
    // the reparsed netlist numbers nets in a different order).
    for (ni2, net2) in netlist2.nets().iter().enumerate() {
        if let Some(orig) = netlist.net_by_name(&net2.name) {
            parasitics2.nets[ni2].sinks = parasitics.nets[orig.index()].sinks.clone();
        }
    }

    // Same analysis on both sides.
    let mode = AnalysisMode::OneStep;
    let d1 = Sta::new(&netlist, &library, &process, &parasitics)?
        .analyze(mode)?
        .longest_delay;
    let d2 = Sta::new(&netlist2, &library, &process, &parasitics2)?
        .analyze(mode)?
        .longest_delay;
    println!("one-step longest path, original : {:.4} ns", d1 * 1e9);
    println!("one-step longest path, roundtrip: {:.4} ns", d2 * 1e9);
    let err = (d1 - d2).abs() / d1;
    println!("relative difference: {:.3e}", err);
    assert!(err < 1e-9, "format roundtrip must not change timing");
    println!("=> formats are lossless for the timing flow.");
    Ok(())
}
