//! Quickstart: run all five crosstalk analyses on ISCAS89 s27.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xtalk::prelude::*;
use xtalk::sta::report::comparison_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Technology: generic 0.5 um, 3.3 V, two metal layers — the paper's
    //    experimental setup.
    let process = Process::c05um();
    let library = Library::c05um(&process);

    // 2. Circuit: the embedded ISCAS89 s27 netlist.
    let netlist = xtalk::netlist::bench::parse(xtalk::netlist::data::S27_BENCH, &library)?;
    netlist.validate(&library)?;
    println!(
        "{}: {} gates, {} nets, {} flip-flops",
        netlist.name,
        netlist.gate_count(),
        netlist.net_count(),
        netlist.flip_flop_count()
    );

    // 3. Physical design: place, route on two metal layers, extract ground
    //    and coupling capacitances.
    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    println!(
        "layout: {:.0} um of wire, {} coupling caps ({:.1} fF total)",
        routes.total_wirelength() * 1e6,
        parasitics.coupling_count() / 2,
        parasitics.total_coupling() * 0.5 * 1e15,
    );

    // 4. Timing: the five analyses of the paper's §6.
    let sta = Sta::new(&netlist, &library, &process, &parasitics)?;
    let mut reports = Vec::new();
    for mode in AnalysisMode::all() {
        reports.push(sta.analyze(mode)?);
    }
    println!();
    println!(
        "{}",
        comparison_table(&netlist.name, netlist.gate_count(), &reports)
    );

    // 5. The critical path of the safest refined analysis.
    let iterative = reports.last().expect("five reports");
    println!("critical path ({}):", iterative.mode);
    for step in &iterative.critical_path {
        println!(
            "  {:>8.3} ns  {:<10} {:<8} -> {} ({})",
            step.arrival * 1e9,
            step.cell,
            netlist.gate(step.gate).name,
            netlist.net(step.net).name,
            if step.rising { "rise" } else { "fall" }
        );
    }
    Ok(())
}
