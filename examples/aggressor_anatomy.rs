//! Anatomy of one coupling event — the paper's Fig. 1 situation.
//!
//! A victim inverter drives a wire coupled to one aggressor. The example
//! compares the four treatments of the coupling cap on the *same* stage
//! (quiet / doubled / active model) against transistor-level transient
//! simulation with the aggressor swept across alignments, showing
//! why the worst case occurs when the aggressor fires just as the victim
//! passes the restart threshold.
//!
//! ```text
//! cargo run --release --example aggressor_anatomy
//! ```

use xtalk::prelude::*;
use xtalk::sim::circuit::{Circuit, Drive, NodeRef};
use xtalk::sim::transient::{simulate, SimOptions};
use xtalk::wave::stage::{Coupling, CouplingMode, Load, StageSolver};

const CGROUND: f64 = 30e-15;
const CCOUPLE: f64 = 12e-15;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = Process::c05um();
    let library = Library::c05um(&process);
    let inv = library.cell("INVX2").expect("library inverter");
    let th = process.delay_threshold();

    // The victim stage: falling input => rising output.
    let input = Waveform::ramp(0.0, 0.3e-9, process.vdd, 0.0)?;
    let solver = StageSolver::new(&process);
    let solve = |mode: CouplingMode| -> Result<f64, Box<dyn std::error::Error>> {
        let load = Load {
            cground: CGROUND,
            couplings: vec![Coupling::new(CCOUPLE, mode)],
        };
        let r = solver.solve(&inv.stages[0], 0, &input, &[], load)?;
        Ok(r.delay_from(&input, th).expect("crossing"))
    };
    let quiet = solve(CouplingMode::Grounded)?;
    let doubled = solve(CouplingMode::Doubled)?;
    let active = solve(CouplingMode::Active)?;

    println!("victim stage delay under the three coupling treatments:");
    println!("  aggressor quiet (grounded Cc) : {:>8.1} ps", quiet * 1e12);
    println!(
        "  static doubled  (2x grounded) : {:>8.1} ps",
        doubled * 1e12
    );
    println!(
        "  active model    (paper, worst): {:>8.1} ps",
        active * 1e12
    );
    println!();

    // Transient reference: sweep the aggressor's switching time.
    println!("transient simulation, aggressor alignment sweep:");
    println!("{:>12} {:>12}", "t_agg [ps]", "delay [ps]");
    let mut sim_worst: f64 = f64::NEG_INFINITY;
    let quiet_sim = simulate_victim(&process, &library, None)?;
    for k in 0..=16 {
        let t_agg = 0.0 + k as f64 * 0.05e-9;
        let d = simulate_victim(&process, &library, Some(t_agg))?;
        sim_worst = sim_worst.max(d);
        let bar = "#".repeat(((d - quiet_sim).max(0.0) * 1e12 / 10.0) as usize);
        println!("{:>12.0} {:>12.1}  {bar}", t_agg * 1e12, d * 1e12);
    }
    println!();
    println!("simulated quiet delay    : {:>8.1} ps", quiet_sim * 1e12);
    println!("simulated worst alignment: {:>8.1} ps", sim_worst * 1e12);
    println!(
        "paper's active model     : {:>8.1} ps  (a safe cover of the sweep)",
        active * 1e12
    );
    if active + 1e-12 >= sim_worst {
        println!("=> active-model bound covers every simulated alignment.");
    } else {
        println!("=> WARNING: bound violated — model calibration is off!");
    }
    Ok(())
}

/// One transient run of the victim inverter with an optional aggressor step.
fn simulate_victim(
    process: &Process,
    library: &Library,
    aggressor_at: Option<f64>,
) -> Result<f64, Box<dyn std::error::Error>> {
    let inv = library.cell("INVX2").expect("library inverter");
    let th = process.delay_threshold();
    let mut c = Circuit::new();
    let inp = c.add_node(
        "in",
        Drive::Pwl(Waveform::ramp(1.0e-9, 0.3e-9, process.vdd, 0.0)?),
        0.0,
        process.vdd,
    );
    let out = c.add_node("out", Drive::Free, CGROUND, 0.0);
    let agg = match aggressor_at {
        Some(t) => c.add_node(
            "agg",
            Drive::Pwl(Waveform::step(1.0e-9 + t, process.vdd, 0.0)?),
            0.0,
            process.vdd,
        ),
        None => c.add_node("agg", Drive::Const(process.vdd), 0.0, process.vdd),
    };
    c.add_mutual(NodeRef::Node(out), NodeRef::Node(agg), CCOUPLE);
    c.instantiate_cell(
        inv,
        &[NodeRef::Node(inp)],
        NodeRef::Node(out),
        None,
        library,
        process,
        "u0",
    );
    let tr = simulate(
        &c,
        process,
        &SimOptions {
            t_stop: 8e-9,
            ..SimOptions::default()
        },
    )?;
    let t_out = tr.last_crossing(out, th, true).ok_or("victim never rose")?;
    Ok(t_out - (1.0e-9 + 0.15e-9))
}
