//! Crosstalk sign-off on a synthetic SoC block.
//!
//! The scenario from the paper's introduction: a synchronous block in a
//! deep-submicron process whose longest path must be bounded *including*
//! coupling-induced delay. The example generates a ~2k-cell block, runs the
//! whole flow, and shows how much margin each analysis style costs —
//! exactly the trade the paper's Tables 1-3 quantify.
//!
//! ```text
//! cargo run --release --example crosstalk_signoff
//! ```

use xtalk::prelude::*;
use xtalk::sta::report::comparison_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let process = Process::c05um();
    let library = Library::c05um(&process);

    let config = GeneratorConfig::medium(2000);
    let netlist = xtalk::netlist::generator::generate(&config, &library)?;
    netlist.validate(&library)?;
    println!(
        "block `{}`: {} cells ({} flip-flops), logic depth {}",
        netlist.name,
        netlist.gate_count(),
        netlist.flip_flop_count(),
        netlist.logic_depth(&library)?
    );

    let placement = xtalk::layout::place::place(&netlist, &library, &process);
    let routes = xtalk::layout::route::route(&netlist, &placement, &process);
    let parasitics = xtalk::layout::extract::extract(&netlist, &routes, &process);
    println!(
        "die {:.0} x {:.0} um, {:.1} mm wire, {} coupling caps",
        placement.die_width * 1e6,
        placement.die_height * 1e6,
        routes.total_wirelength() * 1e3,
        parasitics.coupling_count() / 2
    );

    let sta = Sta::new(&netlist, &library, &process, &parasitics)?;
    let mut reports = Vec::new();
    for mode in [
        AnalysisMode::BestCase,
        AnalysisMode::StaticDoubled,
        AnalysisMode::WorstCase,
        AnalysisMode::OneStep,
        AnalysisMode::Iterative { esperance: false },
        AnalysisMode::Iterative { esperance: true },
    ] {
        reports.push(sta.analyze(mode)?);
    }
    println!();
    println!(
        "{}",
        comparison_table(&netlist.name, netlist.gate_count(), &reports)
    );

    // Sign-off verdict: how much pessimism does each safe bound carry over
    // the refined analysis?
    let best = reports[0].longest_delay;
    let iter = reports[4].longest_delay;
    let worst = reports[2].longest_delay;
    println!(
        "coupling impact (iterative - best case): {:.3} ns",
        (iter - best) * 1e9
    );
    println!(
        "pessimism removed by quiet-line analysis (worst - iterative): {:.3} ns ({:.1}%)",
        (worst - iter) * 1e9,
        (worst - iter) / worst * 100.0
    );
    let conv: Vec<String> = reports[4]
        .pass_delays
        .iter()
        .map(|d| format!("{:.3}", d * 1e9))
        .collect();
    println!("iterative convergence [ns]: {}", conv.join(" -> "));

    // Hold-side view (extension): the earliest possible arrival under
    // assisting coupling, and the worst setup slacks at a target period.
    let min = sta.analyze(AnalysisMode::MinDelay)?;
    println!();
    println!(
        "min-delay (hold) shortest path: {:.3} ns (timing window {:.3}..{:.3} ns)",
        min.longest_delay * 1e9,
        min.longest_delay * 1e9,
        iter * 1e9
    );
    let period = iter * 1.05;
    println!();
    print!(
        "{}",
        xtalk::sta::report::slack_table(&netlist, &reports[4], period, 5)
    );
    Ok(())
}
